"""Gray failures and their adaptive defenses.

Covers the fail-slow fault interpretation, the phi-accrual detector,
adaptive per-destination deadlines, hedged reads (including the
hypothesis soundness property), health-aware remastering, the
stale-suspicion restart regression, and the detector counters'
end-to-end path into reports and exports.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_benchmark
from repro.core.partitions import PartitionTable
from repro.core.statistics import AccessStatistics, StatisticsConfig
from repro.core.strategy import RemasterStrategy, StrategyWeights
from repro.faults import (
    AdaptiveDetector,
    CrashFault,
    DeadlineTracker,
    FaultPlan,
    SlowFault,
    build_scenario,
)
from repro.faults.chaos import defense_setup, run_chaos
from repro.sim.config import ClusterConfig, RpcConfig
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.versioning import VersionVector
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def _workload():
    return YCSBWorkload(
        YCSBConfig(num_partitions=40, rmw_fraction=0.5, zipf_theta=0.5)
    )


def _run(system, fault_plan, rpc=None, seed=7, duration_ms=900.0, weights=None):
    return run_benchmark(
        system,
        _workload(),
        num_clients=8,
        duration_ms=duration_ms,
        warmup_ms=100.0,
        cluster_config=ClusterConfig(num_sites=3, rpc=rpc or RpcConfig()),
        weights=weights,
        seed=seed,
        fault_plan=fault_plan,
    )


def _fingerprint(result):
    payload = {
        "commits": result.metrics.commits,
        "commit_time_sum": round(sum(result.metrics.commit_times), 6),
        "latency_mean": round(result.latency().mean, 6),
        "traffic": sorted(result.traffic_bytes.items()),
        "aborts": sorted(result.metrics.aborts_by_reason.items()),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


# -- fail-slow interpretation (Resource.slow hook) --------------------------


class TestSlowHook:
    def _timed_use(self, factor):
        env = Environment()
        cpu = Resource(env, capacity=1)
        if factor is not None:
            cpu.slow = lambda: factor
        done = {}

        def proc():
            yield from cpu.use(10.0)
            done["at"] = env.now

        env.process(proc())
        env.run(until=1000.0)
        return done["at"]

    def test_multiplier_stretches_service_time(self):
        assert self._timed_use(None) == 10.0
        assert self._timed_use(4.0) == 40.0

    def test_unit_multiplier_is_identity(self):
        assert self._timed_use(1.0) == 10.0

    def test_injector_applies_and_lifts_slow_window(self):
        plan = FaultPlan(slowdowns=(SlowFault(1, 200.0, 500.0, factor=8.0),))
        result = _run("dynamast", plan, duration_ms=800.0)
        injector = result.injector
        assert injector.cpu_multiplier(1) == 1.0  # past the window
        assert result.system.cluster.sites[1].cpu.slow is not None
        assert result.metrics.commits > 0

    def test_overlapping_slow_windows_multiply(self):
        plan = FaultPlan(slowdowns=(
            SlowFault(1, 0.0, 100.0, factor=2.0),
            SlowFault(1, 50.0, 100.0, factor=3.0),
        ))
        result = _run("dynamast", plan, duration_ms=60.0)
        # env.now is 60.0 at run end — inside both windows.
        assert result.injector.cpu_multiplier(1) == 6.0


# -- phi-accrual detector ---------------------------------------------------


class TestAdaptiveDetector:
    def _detector(self, clock, **kwargs):
        return AdaptiveDetector(clock=clock, **kwargs)

    def test_idle_silence_is_not_suspicion(self):
        now = [0.0]
        detector = self._detector(lambda: now[0])
        for t in (1.0, 2.0, 3.0, 4.0):
            now[0] = t
            detector.report_success(0)
        now[0] = 1000.0  # long silence, but no timeouts: nobody called
        assert detector.phi(0) == 0.0
        assert not detector.is_suspected(0)

    def test_timeout_gated_silence_accrues_phi(self):
        now = [0.0]
        detector = self._detector(lambda: now[0])
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            now[0] = t
            detector.report_success(0)
        now[0] = 6.0
        detector.report_timeout(0)
        small = detector.phi(0)
        now[0] = 500.0
        large = detector.phi(0)
        assert 0.0 <= small < large
        assert detector.is_suspected(0)  # re-evaluated at read time
        assert detector.suspicion_episodes == 1

    def test_success_clears_suspicion_after_quarantine(self):
        now = [0.0]
        detector = self._detector(lambda: now[0], quarantine_ms=250.0)
        now[0] = 1.0
        detector.report_success(0)
        now[0] = 2.0
        detector.report_success(0)
        now[0] = 400.0
        detector.report_timeout(0)
        assert detector.is_suspected(0)
        assert detector.health(0) == 0.0
        # A success inside the quarantine window does NOT clear the
        # suspicion — a fail-slow site keeps succeeding (slowly), and
        # without the latch routing would flicker instead of draining.
        detector.report_success(0)
        assert detector.is_suspected(0)
        # Past the quarantine, the next success rehabilitates the site.
        now[0] = 400.0 + 250.0
        detector.report_success(0)
        assert not detector.is_suspected(0)
        assert detector.health(0) == 1.0

    def test_fresh_timeouts_extend_the_quarantine(self):
        now = [0.0]
        detector = self._detector(lambda: now[0], quarantine_ms=100.0)
        detector.report_timeout(0)
        detector.report_timeout(0)  # strike fallback trips at 2
        assert detector.is_suspected(0)
        now[0] = 90.0
        detector.report_timeout(0)  # extends to 190.0
        now[0] = 150.0
        detector.report_success(0)
        assert detector.is_suspected(0)  # still inside extended latch
        now[0] = 200.0
        detector.report_success(0)
        assert not detector.is_suspected(0)

    def test_episodes_are_timestamped(self):
        now = [42.0]
        detector = self._detector(lambda: now[0])
        detector.report_down(1)
        assert detector.episodes == [(42.0, 1)]

    def test_down_suspects_immediately(self):
        detector = self._detector(lambda: 0.0)
        detector.report_down(2)
        assert detector.is_suspected(2)
        assert detector.phi(2) == float("inf")

    def test_strike_fallback_before_history(self):
        detector = self._detector(lambda: 0.0, threshold=2)
        detector.report_timeout(1)
        assert not detector.is_suspected(1)
        detector.report_timeout(1)
        assert detector.is_suspected(1)

    def test_clear_drops_all_evidence(self):
        now = [0.0]
        detector = self._detector(lambda: now[0])
        now[0] = 1.0
        detector.report_success(0)
        now[0] = 2.0
        detector.report_success(0)
        now[0] = 300.0
        detector.report_timeout(0)
        detector.report_down(0)
        assert detector.is_suspected(0)
        detector.clear(0)
        assert not detector.is_suspected(0)
        assert detector.phi(0) == 0.0
        assert detector.health(0) == 1.0

    def test_health_is_graded_between_suspicion_and_calm(self):
        now = [0.0]
        detector = self._detector(lambda: now[0], phi_threshold=8.0)
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            now[0] = t
            detector.report_success(0)
        now[0] = 6.2
        detector.report_timeout(0)
        health = detector.health(0)
        assert 0.0 < health < 1.0

    def test_false_suspicion_counted_against_ground_truth(self):
        detector = AdaptiveDetector(
            clock=lambda: 0.0, ground_truth=lambda site: site == 0
        )
        detector.report_down(0)  # genuinely faulted
        detector.report_down(1)  # healthy: a false suspicion
        assert detector.suspicion_episodes == 2
        assert detector.false_suspicions == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveDetector(clock=lambda: 0.0, phi_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveDetector(clock=lambda: 0.0, alpha=0.0)


# -- adaptive deadlines -----------------------------------------------------


class TestDeadlineTracker:
    def test_fixed_timeout_until_warm(self):
        tracker = DeadlineTracker(timeout_ms=50.0, min_samples=5)
        for _ in range(4):
            tracker.observe(0, 2.0)
        assert tracker.deadline_ms(0) == 50.0
        tracker.observe(0, 2.0)
        assert tracker.deadline_ms(0) < 50.0

    def test_deadline_clamped_between_floor_and_timeout(self):
        tracker = DeadlineTracker(
            timeout_ms=50.0, min_samples=1, floor_ms=5.0, multiplier=3.0
        )
        tracker.observe(0, 0.1)
        assert tracker.deadline_ms(0) == 5.0  # floor
        tracker.observe(1, 1000.0)
        assert tracker.deadline_ms(1) == 50.0  # ceiling: never looser

    def test_hedge_delay_tracks_lower_quantile(self):
        tracker = DeadlineTracker(timeout_ms=50.0, min_samples=1)
        for rtt in (8.0,) * 20:
            tracker.observe(0, rtt)
        assert tracker.hedge_delay_ms(0) <= tracker.deadline_ms(0)

    def test_reset_forgets_destination(self):
        tracker = DeadlineTracker(timeout_ms=50.0, min_samples=1)
        tracker.observe(0, 2.0)
        assert tracker.samples(0) == 1
        tracker.reset(0)
        assert tracker.samples(0) == 0
        assert tracker.deadline_ms(0) == 50.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeadlineTracker(timeout_ms=50.0, quantile=1.5)
        with pytest.raises(ValueError):
            DeadlineTracker(timeout_ms=50.0, multiplier=0.5)
        with pytest.raises(ValueError):
            DeadlineTracker(timeout_ms=50.0, min_samples=0)


# -- hedged reads -----------------------------------------------------------


ADAPTIVE_RPC = RpcConfig(
    detector_policy="adaptive", adaptive_deadlines=True, hedged_reads=True
)


class TestHedgedReads:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=50))
    def test_hedging_never_double_applies_and_is_inert_when_off(self, seed):
        """The hypothesis soundness property for hedged reads.

        (1) With hedging *disabled*, every hedging knob is inert: runs
        differing only in hedge_quantile are bit-identical. (2) With
        hedging *enabled* under a fail-slow master, effects are never
        double-applied: one recorded outcome per transaction, one
        commit time per commit, and wins never exceed launches.
        """
        plan = build_scenario("fail_slow_master", num_sites=3,
                              duration_ms=900.0)
        off_a = _run("dynamast", plan, seed=seed, rpc=RpcConfig(
            detector_policy="adaptive", adaptive_deadlines=True,
            hedged_reads=False, hedge_quantile=0.95,
        ))
        off_b = _run("dynamast", plan, seed=seed, rpc=RpcConfig(
            detector_policy="adaptive", adaptive_deadlines=True,
            hedged_reads=False, hedge_quantile=0.5,
        ))
        assert _fingerprint(off_a) == _fingerprint(off_b)
        assert off_a.metrics.detector_counters["hedges_launched"] == 0

        on = _run("dynamast", plan, seed=seed, rpc=ADAPTIVE_RPC)
        metrics = on.metrics
        assert metrics.commits == len(metrics.commit_times)
        assert metrics.abort_count == len(metrics.abort_times)
        for samples in metrics.latencies.values():
            assert all(latency >= 0.0 for latency in samples)
        counters = metrics.detector_counters
        assert counters["hedge_wins"] <= counters["hedges_launched"]

    def test_hedges_fire_under_fail_slow_master(self):
        plan = build_scenario("fail_slow_master", num_sites=3,
                              duration_ms=1500.0)
        result = _run("dynamast", plan, rpc=ADAPTIVE_RPC,
                      duration_ms=1500.0)
        counters = result.metrics.detector_counters
        assert counters["hedges_launched"] > 0
        assert counters["hedge_wins"] > 0

    def test_hedged_run_is_deterministic(self):
        plan = build_scenario("fail_slow_master", num_sites=3,
                              duration_ms=900.0)
        first = _run("dynamast", plan, rpc=ADAPTIVE_RPC)
        second = _run("dynamast", plan, rpc=ADAPTIVE_RPC)
        assert _fingerprint(first) == _fingerprint(second)
        assert first.metrics.detector_counters == \
            second.metrics.detector_counters


# -- health-aware remastering ----------------------------------------------


class TestHealthAwareStrategy:
    def _strategy(self, weights, num_sites=2):
        env = Environment()
        table = PartitionTable(env, {0: 0, 1: 0})
        stats = AccessStatistics(StatisticsConfig())
        return RemasterStrategy(weights, stats, table, num_sites)

    def test_health_penalty_steers_away_from_sick_site(self):
        strategy = self._strategy(StrategyWeights(health=10.0))
        vvs = [VersionVector.zeros(2) for _ in range(2)]
        # All Equation-8 features are zero; without health evidence the
        # lowest-site tie-break would pick site 0.
        decision = strategy.decide([0], vvs, health=[0.2, 1.0])
        assert decision.site == 1
        penalties = {score.site: score.health_penalty
                     for score in decision.scores}
        assert penalties[0] == pytest.approx(0.8)
        assert penalties[1] == 0.0

    def test_zero_weight_ignores_health_entirely(self):
        strategy = self._strategy(StrategyWeights(health=0.0))
        vvs = [VersionVector.zeros(2) for _ in range(2)]
        baseline = strategy.decide([0], vvs)
        with_health = strategy.decide([0], vvs, health=[0.0, 1.0])
        assert with_health.site == baseline.site
        assert all(score.health_penalty == 0.0
                   for score in with_health.scores)

    def test_mild_degradation_loses_to_strong_feature_signal(self):
        # A modest health weight must not override a decisive balance
        # signal — the penalty is soft, not an exclusion.
        strategy = self._strategy(StrategyWeights(balance=10_000.0, health=1.0))
        stats = strategy.statistics
        stats.observe(0.0, 1, [0])
        stats.observe(1.0, 1, [1])
        vvs = [VersionVector.zeros(2) for _ in range(2)]
        decision = strategy.decide([1], vvs, health=[1.0, 0.9])
        assert decision.site == 1  # rebalancing beats the soft penalty


# -- restart hygiene (stale-suspicion regression) --------------------------


class TestRestartHygiene:
    def test_crash_restart_clears_suspicion_and_routes_back(self):
        plan = build_scenario("crash-restart", num_sites=3,
                              duration_ms=1500.0)
        result = _run("dynamast", plan, duration_ms=1500.0)
        injector = result.injector
        kinds = [(event.kind, event.site) for event in injector.events]
        assert ("crash", 1) in kinds and ("restart", 1) in kinds
        # The rejoined site carries no stale suspicion, and its RTT
        # history was dropped at restart (it re-accumulates from the
        # post-restart traffic only, so it trails a never-crashed peer).
        assert not injector.detector.is_suspected(1)
        assert injector.detector.phi(1) == 0.0
        assert 0 < injector.deadlines.samples(1) < injector.deadlines.samples(2)
        assert result.metrics.detector_counters["suspected_sites"] == 0
        assert result.system.cluster.sites[1].alive

    def test_slow_hook_survives_crash_restart(self):
        # crash() replaces the CPU resource; the restart hook must
        # reinstall the fail-slow multiplier on the new one.
        plan = FaultPlan(
            crashes=(CrashFault(1, at_ms=300.0, restart_at_ms=600.0),),
            slowdowns=(SlowFault(1, 0.0, float("inf"), factor=3.0),),
        )
        result = _run("dynamast", plan, duration_ms=1500.0)
        site = result.system.cluster.sites[1]
        assert site.alive
        assert site.cpu.slow is not None
        assert site.cpu.slow() == 3.0


# -- counters end-to-end ----------------------------------------------------


class TestDetectorObservability:
    @pytest.fixture(scope="class")
    def adaptive_chaos(self):
        return run_chaos(
            "dynamast", "fail_slow_master",
            duration_ms=3000.0, defenses="adaptive",
        )

    def test_counters_reach_metrics(self, adaptive_chaos):
        counters = adaptive_chaos.result.metrics.detector_counters
        assert counters["suspicion_episodes"] >= 1
        assert counters["false_suspicions"] == 0
        assert counters["hedges_launched"] > 0

    def test_counters_reach_csv_export(self, adaptive_chaos):
        from repro.bench.export import FIELDS, run_to_row

        row = run_to_row(adaptive_chaos.result)
        for column in ("suspicion_episodes", "false_suspicions",
                       "hedges_launched", "hedge_wins"):
            assert column in FIELDS
            assert row[column] >= 0
        assert row["suspicion_episodes"] >= 1

    def test_counters_reach_prometheus(self, adaptive_chaos):
        text = adaptive_chaos.result.metrics.to_prometheus()
        assert "repro_detector_suspicion_episodes_total" in text
        assert "repro_detector_false_suspicions_total" in text
        assert "repro_detector_hedges_launched_total" in text
        assert "# TYPE repro_detector_suspected_sites gauge" in text

    def test_unfaulted_runs_export_zero_counters(self):
        result = run_benchmark(
            "dynamast", _workload(), num_clients=4, duration_ms=300.0,
            warmup_ms=100.0, cluster_config=ClusterConfig(num_sites=3),
            seed=7,
        )
        assert result.metrics.detector_counters == {}
        from repro.bench.export import run_to_row

        row = run_to_row(result)
        assert row["suspicion_episodes"] == 0
        assert row["hedges_launched"] == 0
        assert "repro_detector" not in result.metrics.to_prometheus()


# -- defense presets --------------------------------------------------------


class TestDefensePresets:
    def test_fixed_preset_is_the_baseline(self):
        rpc, weights = defense_setup("fixed", _workload())
        assert rpc.detector_policy == "threshold"
        assert not rpc.adaptive_deadlines
        assert not rpc.hedged_reads
        assert weights is None

    def test_adaptive_preset_arms_everything(self):
        rpc, weights = defense_setup("adaptive", _workload())
        assert rpc.detector_policy == "adaptive"
        assert rpc.adaptive_deadlines
        assert rpc.hedged_reads
        assert weights is not None and weights.health > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown defenses"):
            defense_setup("wishful", _workload())

    def test_unknown_detector_policy_rejected(self):
        plan = build_scenario("crash", num_sites=3, duration_ms=900.0)
        with pytest.raises(ValueError, match="detector policy"):
            _run("dynamast", plan, rpc=RpcConfig(detector_policy="psychic"))


# -- the headline: adaptive defenses beat fixed under fail-slow -------------


class TestFailSlowHeadline:
    def test_detection_under_fail_slow_needs_adaptive_deadlines(self):
        """A 10x-slow master still answers within the generous fixed
        timeout, so the fixed-strike detector never suspects it; the
        adaptive stack converts the slowness into timeout evidence and
        suspicion."""
        plan = build_scenario("fail_slow_master", num_sites=3,
                              duration_ms=3000.0)
        fixed = _run("dynamast", plan, duration_ms=3000.0,
                     rpc=RpcConfig(detector_policy="threshold"))
        assert fixed.metrics.detector_counters["suspicion_episodes"] == 0

        adaptive = _run("dynamast", plan, duration_ms=3000.0,
                        rpc=ADAPTIVE_RPC)
        assert adaptive.metrics.detector_counters["suspicion_episodes"] >= 1
        assert adaptive.metrics.detector_counters["false_suspicions"] == 0
