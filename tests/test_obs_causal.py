"""Causal edges and critical-path attribution: unit + end-to-end.

The load-bearing acceptance test lives here: for every committed
transaction of an observed run — on all five systems — the critical
path's per-category durations sum to the measured commit latency
within 1e-6 simulated milliseconds.
"""

import pytest

from repro.bench import run_benchmark
from repro.obs import Observability, Tracer
from repro.obs.causal import (
    CATEGORIES,
    EDGE_KINDS,
    SPAN_CATEGORY,
    critical_path,
    path_categories,
)
from repro.sim.config import ClusterConfig
from repro.bench.harness import ALL_SYSTEMS
from repro.transactions import Outcome, Transaction
from repro.workloads import YCSBConfig, YCSBWorkload


def make_txn(kind="rmw"):
    return Transaction(kind, client_id=0, write_set=(("t", 1),))


def trace_envelope(tracer, txn, begin, end):
    tracer.txn_begin(txn, begin)
    tracer.txn_end(txn, Outcome(committed=True), end)


class TestCriticalPathUnit:
    def test_empty_for_unknown_or_open_txn(self):
        tracer = Tracer()
        assert critical_path(tracer, 999) == []
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        assert critical_path(tracer, txn.txn_id) == []

    def test_uncovered_envelope_is_other(self):
        tracer = Tracer()
        txn = make_txn()
        trace_envelope(tracer, txn, 1.0, 5.0)
        segments = critical_path(tracer, txn.txn_id)
        assert len(segments) == 1
        assert segments[0].category == "other"
        assert segments[0].duration == pytest.approx(4.0)

    def test_innermost_span_wins(self):
        tracer = Tracer()
        txn = make_txn()
        trace_envelope(tracer, txn, 0.0, 10.0)
        tracer.span("execute", 0.0, 10.0, track="site0", txn=txn)
        tracer.span("lock_wait", 2.0, 5.0, track="site0", txn=txn)
        categories = path_categories(critical_path(tracer, txn.txn_id))
        assert categories["lock_wait"] == pytest.approx(3.0)
        assert categories["cpu_service"] == pytest.approx(7.0)

    def test_gaps_between_spans_are_other(self):
        tracer = Tracer()
        txn = make_txn()
        trace_envelope(tracer, txn, 0.0, 10.0)
        tracer.span("route", 0.0, 2.0, track="selector", txn=txn)
        tracer.span("commit", 6.0, 10.0, track="site0", txn=txn)
        categories = path_categories(critical_path(tracer, txn.txn_id))
        assert categories["rpc_rounds"] == pytest.approx(2.0)
        assert categories["cpu_service"] == pytest.approx(4.0)
        assert categories["other"] == pytest.approx(4.0)

    def test_spans_clamped_to_envelope(self):
        """Crash-severed spans outliving the envelope still explain the
        part of the wait they overlap — no more, no less."""
        tracer = Tracer()
        txn = make_txn()
        trace_envelope(tracer, txn, 2.0, 6.0)
        tracer.span("lock_wait", 0.0, 99.0, track="site1", txn=txn)
        segments = critical_path(tracer, txn.txn_id)
        assert len(segments) == 1
        assert segments[0].start == 2.0
        assert segments[0].end == 6.0
        assert segments[0].category == "lock_wait"

    def test_adjacent_same_category_segments_merge(self):
        tracer = Tracer()
        txn = make_txn()
        trace_envelope(tracer, txn, 0.0, 4.0)
        tracer.span("execute", 0.0, 2.0, track="site0", txn=txn)
        tracer.span("execute", 2.0, 4.0, track="site0", txn=txn)
        segments = critical_path(tracer, txn.txn_id)
        assert len(segments) == 1
        assert segments[0].duration == pytest.approx(4.0)

    def test_unknown_span_name_is_other(self):
        tracer = Tracer()
        txn = make_txn()
        trace_envelope(tracer, txn, 0.0, 1.0)
        tracer.span("mystery", 0.0, 1.0, txn=txn)
        segments = critical_path(tracer, txn.txn_id)
        assert segments[0].category == "other"
        assert segments[0].span_name == "mystery"

    def test_path_categories_zero_filled_and_sums(self):
        tracer = Tracer()
        txn = make_txn()
        trace_envelope(tracer, txn, 0.0, 8.0)
        tracer.span("freshness_wait", 0.0, 3.0, track="site0", txn=txn)
        categories = path_categories(critical_path(tracer, txn.txn_id))
        assert set(categories) == set(CATEGORIES)
        assert sum(categories.values()) == pytest.approx(8.0)
        assert categories["refresh_wait"] == pytest.approx(3.0)

    def test_every_mapped_category_is_known(self):
        assert set(SPAN_CATEGORY.values()) <= set(CATEGORIES)
        assert "other" in CATEGORIES


def observed_run(system, seed=11, duration=400.0, **kwargs):
    obs = Observability()
    result = run_benchmark(
        system,
        YCSBWorkload(
            YCSBConfig(num_partitions=40, rmw_fraction=0.5, affinity_txns=50)
        ),
        num_clients=6,
        duration_ms=duration,
        warmup_ms=50.0,
        cluster_config=ClusterConfig(num_sites=3),
        seed=seed,
        obs=obs,
        **kwargs,
    )
    return result, obs


class TestAttributionSumsToLatency:
    """The acceptance criterion: categories partition the latency."""

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_critical_path_sums_to_commit_latency(self, system):
        result, obs = observed_run(system)
        tracer = obs.tracer
        checked = 0
        for txn_id, record in tracer.txns.items():
            if not record.recorded or record.latency is None:
                continue
            categories = path_categories(critical_path(tracer, txn_id))
            assert abs(sum(categories.values()) - record.latency) < 1e-6, (
                system, txn_id
            )
            checked += 1
        assert checked > 0, f"{system}: no committed recorded txns traced"


class TestEdgesEndToEnd:
    def test_dynamast_emits_expected_edge_kinds(self):
        _, obs = observed_run("dynamast")
        kinds = {edge.kind for edge in obs.tracer.edges}
        assert kinds <= set(EDGE_KINDS)
        for expected in ("rpc", "remaster"):
            assert expected in kinds, f"missing edge kind {expected!r}"

    def test_two_phase_commit_rounds_recorded(self):
        result, obs = observed_run("multi-master")
        if not result.metrics.distributed_txns:
            pytest.skip("no distributed txns this run")
        rounds = [e for e in obs.tracer.edges if e.kind == "2pc_round"]
        assert rounds
        names = {dict(edge.args)["round"] for edge in rounds}
        assert names == {"execute", "prepare", "decide"}

    def test_lock_edges_name_the_holder(self):
        _, obs = observed_run("single-master")
        lock_edges = [e for e in obs.tracer.edges if e.kind == "lock_wait"]
        if not lock_edges:
            pytest.skip("no lock contention this run")
        for edge in lock_edges:
            assert edge.txn_id is not None
            if edge.src_txn_id is not None:
                assert edge.src_txn_id in obs.tracer.txns

    def test_edges_of_sorted_by_timestamp(self):
        _, obs = observed_run("dynamast")
        for record in obs.tracer.txns.values():
            edges = obs.tracer.edges_of(record.txn_id)
            assert edges == sorted(edges, key=lambda e: (e.ts, e.kind))

    def test_unobserved_run_has_no_edge_hooks_cost(self):
        """An unobserved run records nothing — the NullTracer edge hook
        is a no-op and keeps no state."""
        result = run_benchmark(
            "dynamast",
            YCSBWorkload(YCSBConfig(num_partitions=20)),
            num_clients=4,
            duration_ms=120.0,
            warmup_ms=20.0,
            cluster_config=ClusterConfig(num_sites=2),
            seed=5,
        )
        assert result.obs is None


class TestDeterministicBudget:
    def test_same_seed_same_budget(self):
        from repro.obs.attribution import AttributionReport

        first = AttributionReport.from_result(observed_run("dynamast")[0])
        second = AttributionReport.from_result(observed_run("dynamast")[0])
        assert first.aggregate() == second.aggregate()
        assert first.shares() == second.shares()
        assert len(first.txns) == len(second.txns)
