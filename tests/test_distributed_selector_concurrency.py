"""Concurrency test for the replicated site selector (Appendix I).

Many clients route through a replica selector while remastering
continuously changes the truth at the master; every transaction must
still commit exactly once at a site that masters its write set.
"""

import random

from repro.core.distributed_selector import ReplicaSelector
from repro.core.site_selector import SiteSelector
from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems.base import Cluster, Session
from repro.transactions import Transaction
from repro.versioning import VersionVector


def test_replica_selector_under_concurrent_remastering():
    cluster = Cluster(ClusterConfig(num_sites=3, seed=5))
    scheme = PartitionScheme(lambda key: key[1] // 5, num_partitions=12)
    placement = scheme.round_robin_placement(3)
    cluster.place_partitions(placement)
    master = SiteSelector(cluster, scheme, placement)
    replica = ReplicaSelector(master, cluster, refresh_interval_ms=2.0)
    outcomes = []

    def client(client_id):
        rng = random.Random(client_id)
        session = Session(client_id, VersionVector.zeros(3))
        for _ in range(15):
            keys = tuple(
                set(("t", rng.randrange(60)) for _ in range(rng.randint(1, 2)))
            )
            txn = Transaction("w", client_id, write_set=keys)
            tvv, retries = yield from replica.submit_update(txn, session)
            session.observe(tvv)
            outcomes.append((txn.txn_id, retries))

    processes = [cluster.env.process(client(c)) for c in range(8)]
    cluster.env.run(until=20000.0)
    assert all(not process.is_alive for process in processes)
    cluster.env.run(until=cluster.env.now + 50.0)

    # Every transaction committed exactly once.
    assert len(outcomes) == 8 * 15
    total_commits = sum(site.commits for site in cluster.sites)
    assert total_commits == len(outcomes)
    # The replica actually took local routes and survived staleness.
    assert replica.local_routes > 0
    # Any stale aborts were resolved by resubmission.
    assert all(retries <= 2 for _, retries in outcomes)
    # Replicas converge as usual.
    svvs = {site.svv.to_tuple() for site in cluster.sites}
    assert len(svvs) == 1
