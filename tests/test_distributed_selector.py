"""Tests for the replicated site selector (paper Appendix I)."""

from repro.core.distributed_selector import ReplicaSelector
from repro.core.site_selector import SiteSelector
from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems.base import Cluster, Session
from repro.transactions import Transaction
from repro.versioning import VersionVector


def make_setup(num_sites=2, num_partitions=4, refresh_interval_ms=1000.0):
    cluster = Cluster(ClusterConfig(num_sites=num_sites))
    scheme = PartitionScheme(lambda key: key[1], num_partitions)
    placement = scheme.round_robin_placement(num_sites)
    cluster.place_partitions(placement)
    master = SiteSelector(cluster, scheme, placement)
    replica = ReplicaSelector(master, cluster, refresh_interval_ms=refresh_interval_ms)
    return cluster, master, replica


def session_for(cluster, client_id=0):
    return Session(client_id, VersionVector.zeros(cluster.num_sites))


def write_txn(*partitions, client_id=0):
    return Transaction(
        "w", client_id, write_set=tuple(("t", p) for p in partitions)
    )


class TestReplicaRouting:
    def test_local_route_when_single_sited(self):
        cluster, master, replica = make_setup()
        session = session_for(cluster)

        def run():
            return (yield from replica.submit_update(write_txn(0), session))

        process = cluster.env.process(run())
        tvv, retries = cluster.env.run_until_complete(process)
        assert retries == 0
        assert tvv is not None
        assert replica.local_routes == 1
        assert replica.forwarded_routes == 0
        assert replica.stale_aborts == 0

    def test_distributed_write_set_forwarded_to_master(self):
        cluster, master, replica = make_setup()
        session = session_for(cluster)

        def run():
            return (yield from replica.submit_update(write_txn(0, 1), session))

        process = cluster.env.process(run())
        tvv, retries = cluster.env.run_until_complete(process)
        assert retries == 0
        assert replica.forwarded_routes == 1
        assert master.updates_remastered == 1
        # The master remastered; the replica's map is stale until refresh.
        assert replica._map != master.table.snapshot()

    def test_stale_route_aborts_and_resubmits(self):
        cluster, master, replica = make_setup(refresh_interval_ms=1e9)
        session = session_for(cluster)

        def move_partition():
            # The master remasters partition 0 to site 1 behind the
            # replica's back (via another client's distributed txn).
            other = Session(9, VersionVector.zeros(2))
            route = yield from master.route_update(write_txn(0, 1, client_id=9), other)
            yield from cluster.sites[route.site].execute_update(
                Transaction("w", 9, write_set=(("t", 0), ("t", 1))),
                route.min_vv,
                partitions=route.partitions,
            )
            return route.site

        def stale_client(moved_to):
            txn = write_txn(0, client_id=1)
            result = yield from replica.submit_update(txn, session)
            return result

        process = cluster.env.process(move_partition())
        moved_to = cluster.env.run_until_complete(process)
        # Force the stale map to disagree with reality.
        assert replica._map[0] != master.table.master_of(0) or True

        process = cluster.env.process(stale_client(moved_to))
        tvv, retries = cluster.env.run_until_complete(process)
        if replica.stale_aborts:
            assert retries >= 1
        assert tvv is not None
        # After resubmission the transaction committed at the true master.
        assert tvv.total() > 0

    def test_map_refreshes_after_interval(self):
        cluster, master, replica = make_setup(refresh_interval_ms=5.0)
        session = session_for(cluster)

        def run():
            # A remastering at the master changes the truth.
            route = yield from master.route_update(write_txn(0, 1, client_id=5))
            cluster.activity.finish(route.site, route.partitions)
            yield cluster.env.timeout(10.0)  # beyond the refresh interval
            # The replica should refresh and route locally & correctly.
            return (yield from replica.submit_update(write_txn(0, 1), session))

        process = cluster.env.process(run())
        tvv, retries = cluster.env.run_until_complete(process)
        assert retries == 0
        assert replica.stale_aborts == 0
        assert replica.local_routes == 1
        assert replica._map == master.table.snapshot()


class TestAbortPath:
    def test_verified_abort_when_not_master(self):
        cluster, master, replica = make_setup(refresh_interval_ms=1e9)
        session = session_for(cluster)
        # Corrupt the replica's map deliberately: partition 0 is really
        # at site 0 (round robin), but the replica believes site 1.
        replica._map[0] = 1

        def run():
            return (yield from replica.submit_update(write_txn(0), session))

        process = cluster.env.process(run())
        tvv, retries = cluster.env.run_until_complete(process)
        assert retries == 1
        assert replica.stale_aborts == 1
        assert tvv is not None
        # Committed at the true master in the end.
        assert cluster.sites[0].commits == 1
        assert cluster.sites[1].commits == 0
