"""Tests for the site selector: routing and the remastering protocol."""

import pytest

from repro.core.site_selector import SiteSelector
from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems.base import Cluster, Session
from repro.transactions import Transaction
from repro.versioning import VersionVector


def make_selector(num_sites=2, num_partitions=4, placement=None, weights=None):
    cluster = Cluster(ClusterConfig(num_sites=num_sites))
    scheme = PartitionScheme(lambda key: key[1], num_partitions)
    if placement is None:
        placement = scheme.round_robin_placement(num_sites)
    cluster.place_partitions(placement)
    selector = SiteSelector(cluster, scheme, placement, weights=weights)
    return cluster, scheme, selector


def write_txn(*partitions, client_id=0):
    return Transaction(
        "w", client_id, write_set=tuple(("t", p) for p in partitions)
    )


class TestRouteUpdate:
    def test_single_master_write_routes_without_remastering(self):
        cluster, _, selector = make_selector()
        txn = write_txn(0)  # partition 0 -> site 0

        def run():
            return (yield from selector.route_update(txn))

        process = cluster.env.process(run())
        route = cluster.env.run_until_complete(process)
        assert route.site == 0
        assert not route.remastered
        assert route.min_vv is None
        assert selector.updates_routed == 1
        assert selector.updates_remastered == 0
        # The txn is registered in flight at the routed site.
        assert cluster.activity.active(0, 0) == 1

    def test_distributed_write_set_triggers_remastering(self):
        cluster, _, selector = make_selector()
        txn = write_txn(0, 1)  # partitions at sites 0 and 1

        def run():
            return (yield from selector.route_update(txn))

        process = cluster.env.process(run())
        route = cluster.env.run_until_complete(process)
        assert route.remastered
        assert route.min_vv is not None
        # Both partitions now mastered at the chosen site.
        masters = selector.table.masters_of([0, 1])
        assert masters == {route.site}
        site = cluster.sites[route.site]
        assert {0, 1} <= site.mastered
        assert selector.remaster_rate() == 1.0

    def test_second_transaction_amortizes_remastering(self):
        cluster, _, selector = make_selector()

        def run():
            first = yield from selector.route_update(write_txn(0, 1))
            cluster.activity.finish(first.site, first.partitions)
            second = yield from selector.route_update(write_txn(0, 1))
            cluster.activity.finish(second.site, second.partitions)
            return first, second

        process = cluster.env.process(run())
        first, second = cluster.env.run_until_complete(process)
        assert first.remastered
        assert not second.remastered
        assert second.site == first.site
        assert selector.remaster_rate() == 0.5

    def test_remastered_partition_usable_at_new_master(self):
        """Full flow: route, remaster, execute at the new master."""
        cluster, _, selector = make_selector()

        def run():
            txn = write_txn(0, 1)
            route = yield from selector.route_update(txn)
            tvv = yield from cluster.sites[route.site].execute_update(
                txn, route.min_vv, partitions=route.partitions
            )
            return route, tvv

        process = cluster.env.process(run())
        route, tvv = cluster.env.run_until_complete(process)
        assert tvv[route.site] >= 1

    def test_concurrent_same_write_set_share_remastering(self):
        """A blocked transaction benefits from the first one's move."""
        cluster, _, selector = make_selector()
        routes = []

        def client(txn):
            route = yield from selector.route_update(txn)
            routes.append(route)
            cluster.activity.finish(route.site, route.partitions)

        cluster.env.process(client(write_txn(0, 1, client_id=0)))
        cluster.env.process(client(write_txn(0, 1, client_id=1)))
        cluster.env.run()
        assert len(routes) == 2
        remastered_flags = sorted(route.remastered for route in routes)
        assert remastered_flags == [False, True]
        assert routes[0].site == routes[1].site
        assert selector.remaster_operations <= 1

    def test_release_waits_for_registered_transaction(self):
        """A txn routed first must commit before its partition moves."""
        cluster, _, selector = make_selector()
        order = []
        # Pre-load the statistics so site 0 looks heavily loaded: the
        # strategy will pick site 1 as the remastering destination,
        # forcing partition 0 to move away from the in-flight holder.
        for time in range(10):
            selector.statistics.observe(float(time), 9, [2])

        def slow_holder():
            txn = write_txn(0, client_id=0)
            txn.extra_cpu_ms = 30.0
            route = yield from selector.route_update(txn)
            tvv = yield from cluster.sites[route.site].execute_update(
                txn, route.min_vv, partitions=route.partitions
            )
            order.append(("holder-commit", cluster.env.now))

        def remasterer():
            yield cluster.env.timeout(1.0)
            txn = write_txn(0, 3, client_id=1)
            route = yield from selector.route_update(txn)
            assert route.site == 1
            order.append(("remastered", cluster.env.now))
            cluster.activity.finish(route.site, route.partitions)

        cluster.env.process(slow_holder())
        cluster.env.process(remasterer())
        cluster.env.run()
        assert order[0][0] == "holder-commit"
        assert order[1][0] == "remastered"

    def test_route_counts_tracked(self):
        cluster, _, selector = make_selector()

        def run():
            route = yield from selector.route_update(write_txn(0))
            cluster.activity.finish(route.site, route.partitions)
            route = yield from selector.route_update(write_txn(2))
            cluster.activity.finish(route.site, route.partitions)

        cluster.env.process(run())
        cluster.env.run()
        fractions = selector.route_fractions()
        assert fractions == [1.0, 0.0]  # partitions 0 and 2 both at site 0


class TestRouteRead:
    def test_read_routes_to_fresh_site(self):
        cluster, _, selector = make_selector()
        session = Session(0, VersionVector.zeros(2))

        def run():
            txn = Transaction("r", 0, read_set=(("t", 0),))
            return (yield from selector.route_read(txn, session))

        process = cluster.env.process(run())
        site = cluster.env.run_until_complete(process)
        assert site in (0, 1)
        assert selector.reads_routed == 1

    def test_read_avoids_stale_site(self):
        cluster, _, selector = make_selector()
        # Client has seen update 3 from site 0; site 1 lags.
        cluster.sites[0].svv[0] = 3
        session = Session(0, VersionVector([3, 0]))

        def run():
            sites = []
            for _ in range(20):
                txn = Transaction("r", 0, read_set=(("t", 0),))
                sites.append((yield from selector.route_read(txn, session)))
            return sites

        process = cluster.env.process(run())
        sites = cluster.env.run_until_complete(process)
        assert set(sites) == {0}

    def test_read_spreads_over_fresh_sites(self):
        cluster, _, selector = make_selector(num_sites=4)
        session = Session(0, VersionVector.zeros(4))

        def run():
            sites = []
            for _ in range(80):
                txn = Transaction("r", 0, read_set=(("t", 0),))
                sites.append((yield from selector.route_read(txn, session)))
            return sites

        process = cluster.env.process(run())
        sites = cluster.env.run_until_complete(process)
        assert set(sites) == {0, 1, 2, 3}

    def test_no_fresh_site_picks_least_lagging(self):
        cluster, _, selector = make_selector()
        cluster.sites[0].svv[1] = 1
        session = Session(0, VersionVector([5, 5]))

        def run():
            txn = Transaction("r", 0, read_set=(("t", 0),))
            return (yield from selector.route_read(txn, session))

        process = cluster.env.process(run())
        assert cluster.env.run_until_complete(process) == 0
