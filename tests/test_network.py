"""Tests for the network model and RPC helper."""

import random

import pytest

from repro.sim.core import Environment
from repro.sim.network import Network, NetworkConfig
from repro.sites.messages import remote_call
from repro.transactions import Transaction


class TestNetwork:
    def test_delay_includes_size_term(self):
        env = Environment()
        network = Network(
            env, NetworkConfig(one_way_latency_ms=1.0, bandwidth_bytes_per_ms=1000.0)
        )
        assert network.delay_for(0) == 1.0
        assert network.delay_for(2000) == 3.0

    def test_transfer_advances_clock_and_accounts(self):
        env = Environment()
        network = Network(env, NetworkConfig(one_way_latency_ms=0.5))
        done = []

        def proc():
            yield network.transfer(100, category="test")
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done and done[0] >= 0.5
        assert network.traffic.bytes_by_category["test"] == 100
        assert network.traffic.messages_by_category["test"] == 1

    def test_total_bytes(self):
        env = Environment()
        network = Network(env, NetworkConfig())
        network.traffic.record("a", 10)
        network.traffic.record("b", 5)
        network.traffic.record("a", 1)
        assert network.traffic.total_bytes() == 16

    def test_jitter_varies_delay_deterministically(self):
        env = Environment()
        config = NetworkConfig(one_way_latency_ms=1.0, jitter=0.5)
        network = Network(env, config, rng=random.Random(3))
        delays = {network.delay_for(0) for _ in range(10)}
        assert len(delays) > 1
        assert all(0.5 <= delay <= 1.5 for delay in delays)

    def test_no_rng_means_no_jitter(self):
        env = Environment()
        network = Network(env, NetworkConfig(one_way_latency_ms=1.0, jitter=0.5))
        assert network.delay_for(0) == 1.0


class TestRemoteCall:
    def test_wraps_handler_with_two_hops(self):
        env = Environment()
        network = Network(env, NetworkConfig(one_way_latency_ms=1.0))
        results = []

        def handler():
            yield env.timeout(3.0)
            return "payload"

        def caller():
            value = yield from remote_call(network, handler())
            results.append((env.now, value))

        env.process(caller())
        env.run()
        when, value = results[0]
        assert value == "payload"
        # Two 1 ms hops + 3 ms of handler work (+ tiny size term).
        assert when == pytest.approx(5.0, abs=0.01)

    def test_accounts_network_timing_on_txn(self):
        env = Environment()
        network = Network(env, NetworkConfig(one_way_latency_ms=1.0))
        txn = Transaction("w", 0, write_set=(("t", 1),))

        def handler():
            return "ok"
            yield  # pragma: no cover

        def caller():
            yield from remote_call(network, handler(), txn=txn)

        process = env.process(caller())
        env.run_until_complete(process)
        assert txn.timings["network"] == pytest.approx(2.0, abs=0.01)

    def test_traffic_category(self):
        env = Environment()
        network = Network(env, NetworkConfig())

        def handler():
            return None
            yield  # pragma: no cover

        def caller():
            yield from remote_call(
                network, handler(), request_size=100, response_size=50,
                category="remaster",
            )

        process = env.process(caller())
        env.run_until_complete(process)
        assert network.traffic.bytes_by_category["remaster"] == 150
