"""Tests for trace exporters and the timeline sampler."""

import json

import pytest

from repro.obs import (
    Timeline,
    TimelineSampler,
    Tracer,
    flame_summary,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.core import Environment
from repro.transactions import Outcome, Transaction


def traced_run():
    """A tiny hand-built trace: one committed txn with nested spans."""
    tracer = Tracer()
    txn = Transaction("rmw", client_id=3, write_set=(("t", 1),))
    tracer.txn_begin(txn, 0.0)
    tracer.span("route", 0.0, 1.0, track="selector", txn=txn, site=1)
    tracer.span("execute", 1.0, 4.0, track="site1", txn=txn)
    tracer.span("lock_wait", 1.0, 1.5, track="site1", txn=txn)
    tracer.instant("remaster", 0.5, track="selector", txn=txn, partitions_moved=2)
    tracer.txn_end(txn, Outcome(committed=True), 4.0)
    return tracer, txn


class TestChromeTrace:
    def test_schema_validity(self):
        tracer, txn = traced_run()
        document = to_chrome_trace(tracer)
        # Round-trippable JSON with the documented top-level shape.
        parsed = json.loads(json.dumps(document))
        assert parsed["displayTimeUnit"] == "ms"
        events = parsed["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in ("M", "X", "i", "C")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_tracks_become_named_processes(self):
        tracer, txn = traced_run()
        events = to_chrome_trace(tracer)["traceEvents"]
        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert names == {"selector", "site1"}
        spans = [event for event in events if event["ph"] == "X"]
        assert {span["tid"] for span in spans} == {txn.txn_id}
        # Simulated ms -> trace microseconds.
        execute = next(s for s in spans if s["name"] == "execute")
        assert execute["ts"] == 1000.0
        assert execute["dur"] == 3000.0

    def test_timelines_become_counters(self):
        tracer, _ = traced_run()
        timeline = Timeline("cpu_utilization.site0")
        timeline.append(0.0, 0.25)
        timeline.append(10.0, 0.75)
        events = to_chrome_trace(
            tracer, timelines={"cpu_utilization.site0": timeline}
        )["traceEvents"]
        counters = [event for event in events if event["ph"] == "C"]
        assert [c["args"]["value"] for c in counters] == [0.25, 0.75]
        assert counters[0]["ts"] == 0.0 and counters[1]["ts"] == 10000.0

    def test_write_chrome_trace(self, tmp_path):
        tracer, _ = traced_run()
        path = tmp_path / "run.trace.json"
        write_chrome_trace(tracer, str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestJsonl:
    def test_one_valid_object_per_line(self, tmp_path):
        tracer, txn = traced_run()
        lines = list(to_jsonl(tracer))
        records = [json.loads(line) for line in lines]
        kinds = {record["type"] for record in records}
        assert kinds == {"txn", "span", "instant"}
        envelope = next(r for r in records if r["type"] == "txn")
        assert envelope["txn_id"] == txn.txn_id
        assert envelope["committed"] is True
        path = tmp_path / "run.events.jsonl"
        write_jsonl(tracer, str(path))
        assert len(path.read_text().splitlines()) == len(lines)


class TestFlameSummary:
    def test_paths_rooted_at_txn_type(self):
        tracer, _ = traced_run()
        text = flame_summary(tracer)
        assert "rmw/execute" in text
        assert "rmw/execute/lock_wait" in text
        assert "1 txns" in text

    def test_empty_trace(self):
        assert "(no spans recorded)" in flame_summary(Tracer())

    def test_top_limits_rows(self):
        tracer, _ = traced_run()
        rows = flame_summary(tracer, top=1).splitlines()
        assert len(rows) == 2  # header + 1 span path


class TestTimelineSampler:
    def test_duplicate_probe_rejected(self):
        sampler = TimelineSampler()
        sampler.add_probe("x", lambda: 1.0)
        with pytest.raises(ValueError):
            sampler.add_probe("x", lambda: 2.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TimelineSampler(interval_ms=0.0)

    def test_periodic_sampling_on_sim_clock(self):
        env = Environment()
        sampler = TimelineSampler(interval_ms=10.0)
        reads = iter(range(100))
        sampler.add_probe("level", lambda: next(reads))
        sampler.start(env)
        sampler.start(env)  # idempotent: no second process
        env.run(until=35.0)
        timeline = sampler.timelines["level"]
        assert [when for when, _ in timeline.samples] == [10.0, 20.0, 30.0]
        assert timeline.values() == [0.0, 1.0, 2.0]
        assert timeline.mean() == 1.0
        assert timeline.maximum() == 2.0

    def test_start_without_probes_is_inert(self):
        env = Environment()
        sampler = TimelineSampler()
        sampler.start(env)
        env.run(until=50.0)
        assert sampler.timelines == {}
