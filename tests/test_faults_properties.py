"""Property tests for the fault-injected protocol stack.

Hypothesis generates arbitrary valid fault schedules (crashes with and
without restarts, drops, loss, extra delay) and the properties assert
the robustness contract of DESIGN.md's fault model:

* **termination** — every submitted transaction completes (commit or
  abort); no fault schedule may wedge a client;
* **SI on survivors** — sites that are alive at the end agree on the
  per-record version order (write-write exclusion survived failover);
* **restart convergence** — when every crash has a restart, the
  rejoined replicas converge with the survivors once replication
  drains;
* **merge_logs equivalence** — the ready-queue log merge produces a
  dependency-respecting order matching the naive quadratic reference.

Example counts are kept small: each example is a full (short)
simulation run.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FRONTEND, CrashFault, FaultPlan, LinkFault
from repro.faults.injector import FaultInjector
from repro.partitioning.schemes import PartitionScheme
from repro.replication.recovery import merge_logs
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction

NUM_SITES = 3


@st.composite
def fault_plans(draw, require_restart=False, horizon_ms=1200.0):
    """An arbitrary valid schedule over a 3-site cluster."""
    endpoints = [FRONTEND, 0, 1, 2]
    crashes = []
    for site in draw(
        st.lists(st.sampled_from(range(NUM_SITES)), unique=True, max_size=NUM_SITES - 1)
    ):
        at_ms = draw(st.floats(10.0, horizon_ms * 0.6))
        if require_restart or draw(st.booleans()):
            outage = draw(st.floats(50.0, 600.0))
            crashes.append(CrashFault(site, at_ms=at_ms, restart_at_ms=at_ms + outage))
        else:
            crashes.append(CrashFault(site, at_ms=at_ms))
    links = []
    for _ in range(draw(st.integers(0, 3))):
        src = draw(st.sampled_from(endpoints))
        dst = draw(st.sampled_from([end for end in endpoints if end != src]))
        start_ms = draw(st.floats(0.0, horizon_ms * 0.6))
        length = draw(st.floats(10.0, 400.0))
        drop = draw(st.booleans())
        links.append(LinkFault(
            src, dst, start_ms, start_ms + length,
            drop=drop,
            loss=0.0 if drop else draw(st.floats(0.0, 0.6)),
            extra_delay_ms=draw(st.floats(0.0, 2.0)),
        ))
    plan = FaultPlan(crashes=tuple(crashes), links=tuple(links))
    plan.validate(NUM_SITES)
    return plan


def run_faulted_workload(
    plan,
    seed=0,
    system_name="dynamast",
    num_clients=5,
    txns_per_client=10,
    horizon_ms=30_000.0,
):
    """Finite random clients against one system under ``plan``.

    Returns after asserting that every client process finished — the
    termination property — and draining replication.
    """
    cluster = Cluster(ClusterConfig(num_sites=NUM_SITES, seed=seed))
    scheme = PartitionScheme(lambda key: key[1] // 5, num_partitions=8)
    kwargs = {"scheme": scheme}
    if system_name == "multi-master":
        kwargs["placement"] = {p: p % NUM_SITES for p in range(8)}
    system = build_system(system_name, cluster, **kwargs)
    injector = FaultInjector(cluster, plan, cluster.streams.faults())
    injector.install()

    outcomes = []

    def client(client_id):
        rng = random.Random(seed * 1000 + client_id)
        session = system.new_session(client_id)
        for _ in range(txns_per_client):
            if rng.random() < 0.7:
                keys = tuple({
                    ("t", rng.randrange(40))
                    for _ in range(rng.randint(1, 3))
                })
                txn = Transaction("w", client_id, write_set=keys)
            else:
                txn = Transaction("r", client_id, read_set=(("t", rng.randrange(40)),))
            outcome = yield from system.submit(txn, session)
            outcomes.append(outcome)
        return True

    processes = [
        cluster.env.process(client(client_id)) for client_id in range(num_clients)
    ]
    cluster.env.run(until=horizon_ms)
    stuck = [index for index, process in enumerate(processes) if process.is_alive]
    assert not stuck, (
        f"clients {stuck} never finished under {plan!r} — "
        "a transaction failed to terminate"
    )
    assert len(outcomes) == num_clients * txns_per_client
    # Drain replication / catch-up before inspecting state.
    cluster.env.run(until=cluster.env.now + 1000.0)
    return cluster, system, injector, outcomes


class TestTermination:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=fault_plans(), seed=st.integers(0, 2**16))
    def test_dynamast_every_txn_terminates(self, plan, seed):
        _, _, _, outcomes = run_faulted_workload(plan, seed=seed)
        assert all(hasattr(outcome, "committed") for outcome in outcomes)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=fault_plans(), seed=st.integers(0, 2**16))
    def test_multi_master_every_txn_terminates(self, plan, seed):
        """The 2PC termination protocol: no schedule may leak a lock
        or lose a decision in a way that wedges a later client."""
        run_faulted_workload(plan, seed=seed, system_name="multi-master")


class TestSurvivorInvariants:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=fault_plans(), seed=st.integers(0, 2**16))
    def test_si_write_write_exclusion_on_survivors(self, plan, seed):
        cluster, _, injector, _ = run_faulted_workload(plan, seed=seed)
        alive = [site for site in cluster.sites if site.alive]
        assert alive, "at least one site survives every valid plan"
        reference = {}
        for site in alive:
            for table in site.database.tables.values():
                for record in table:
                    stamps = [
                        (version.origin, version.seq)
                        for version in record.versions()
                        if version.seq > 0
                    ]
                    if not stamps:
                        # Snapshot reads materialize placeholder
                        # records holding only the initial (0, 0)
                        # version; those never replicate, and only
                        # committed versions join the invariant.
                        continue
                    assert len(stamps) == len(set(stamps)), (
                        f"duplicate commit stamp on {record.key}"
                    )
                    previous = reference.setdefault(record.key, stamps)
                    shorter = min(len(previous), len(stamps))
                    assert previous[-shorter:] == stamps[-shorter:], (
                        f"survivors disagree on version order of {record.key}"
                    )

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=fault_plans(require_restart=True), seed=st.integers(0, 2**16))
    def test_restart_convergence(self, plan, seed):
        """With every crash restarted, all replicas converge."""
        cluster, _, injector, _ = run_faulted_workload(plan, seed=seed)
        assert all(site.alive for site in cluster.sites)
        svvs = {site.svv.to_tuple() for site in cluster.sites}
        assert len(svvs) == 1, f"replicas did not converge: {svvs}"
        baseline = cluster.sites[0]
        for site in cluster.sites[1:]:
            for table in baseline.database.tables.values():
                for record in table:
                    if record.latest.seq == 0:
                        # Read-only placeholder: materialized by a
                        # snapshot read at one site, never committed,
                        # never replicated.
                        continue
                    other = site.database.record(record.key)
                    assert other is not None, f"missing {record.key}"
                    assert other.latest.value == record.latest.value, (
                        f"divergence on {record.key}"
                    )
        # Mastership stayed a partition of the partition space.
        mastered = [p for site in cluster.sites for p in site.mastered]
        assert len(mastered) == len(set(mastered)) == 8


def naive_merge(logs):
    """Quadratic reference: rescan every log head after each apply."""
    num = len(logs)
    svv = [0] * num
    cursors = [0] * num
    ordered = []
    total = sum(len(log.records) for log in logs)
    while len(ordered) < total:
        progressed = False
        for index in range(num):
            while cursors[index] < len(logs[index].records):
                record = logs[index].records[cursors[index]]
                if record.seq != svv[index] + 1:
                    break
                if any(
                    record.tvv[k] > svv[k] for k in range(num) if k != index
                ):
                    break
                ordered.append(record)
                svv[index] = record.seq
                cursors[index] += 1
                progressed = True
        if not progressed:
            raise ValueError("logs are inconsistent")
    return ordered


class TestMergeLogsEquivalence:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=fault_plans(require_restart=True), seed=st.integers(0, 2**16))
    def test_matches_naive_reference_on_real_logs(self, plan, seed):
        """The ready-queue merge and the naive reference order the logs
        of a real faulted run (updates + remaster markers) identically
        up to reordering of independent records: same record multiset,
        same per-origin FIFO order, and an admissible prefix at every
        step."""
        cluster, _, _, _ = run_faulted_workload(plan, seed=seed)
        logs = [site.log for site in cluster.sites]
        fast = merge_logs(logs)
        reference = naive_merge(logs)
        assert len(fast) == len(reference) == sum(len(log.records) for log in logs)
        for origin in range(len(logs)):
            fast_seqs = [r.seq for r in fast if r.origin == origin]
            ref_seqs = [r.seq for r in reference if r.origin == origin]
            assert fast_seqs == ref_seqs == list(range(1, len(fast_seqs) + 1))
        # Admissibility of the fast order at every position.
        svv = [0] * len(logs)
        for record in fast:
            assert record.seq == svv[record.origin] + 1
            assert all(
                record.tvv[k] <= svv[k]
                for k in range(len(logs)) if k != record.origin
            ), f"record {record} applied before its dependencies"
            svv[record.origin] = record.seq
