"""Serial-vs-parallel bit-identity, pinned for every driver.

The non-negotiable contract of :mod:`repro.bench.parallel`: a parallel
sweep produces fingerprints bit-identical to the serial sweep — for
``run_suite``, ``run_repeated``, the perf matrix, and the chaos
fan-out — and the ``jobs=1`` path is itself bit-identical to calling
:func:`~repro.bench.harness.run_benchmark` directly (the pre-engine
code path). Scales are tiny; what matters is that every driver's
parallel plumbing funnels through the same simulation.
"""

import pytest

from repro.bench.harness import run_benchmark
from repro.bench.parallel import RunSummary, WorkloadSpec, run_fingerprint
from repro.bench.perf import PerfCase, run_matrix
from repro.bench.repeat import run_repeated
from repro.bench.experiments import run_suite
from repro.faults.chaos import run_chaos, run_chaos_matrix
from repro.sim.config import ClusterConfig

SYSTEMS = ("dynamast", "single-master")
TINY = dict(num_clients=4, duration_ms=200.0, warmup_ms=40.0)
CLUSTER = dict(num_sites=2, cores_per_site=2)


def tiny_workload_spec():
    return WorkloadSpec.of("ycsb", num_partitions=16, rmw_fraction=0.5)


class TestRunSuiteParity:
    def test_parallel_matches_serial(self):
        spec = tiny_workload_spec()
        serial = run_suite(spec, systems=SYSTEMS, cluster=CLUSTER,
                           seed=3, jobs=1, **TINY)
        parallel = run_suite(spec, systems=SYSTEMS, cluster=CLUSTER,
                             seed=3, jobs=2, **TINY)
        assert list(parallel) == list(SYSTEMS)  # deterministic order
        for system in SYSTEMS:
            assert isinstance(parallel[system], RunSummary)
            assert parallel[system].fingerprint == run_fingerprint(serial[system])

    def test_jobs1_matches_direct_run_benchmark(self):
        """The serial path is the pre-engine path, bit for bit."""
        spec = tiny_workload_spec()
        suite = run_suite(spec, systems=("dynamast",), cluster=CLUSTER,
                          seed=3, jobs=1, **TINY)
        direct = run_benchmark(
            "dynamast", spec.build(),
            cluster_config=ClusterConfig(**CLUSTER), seed=3, **TINY,
        )
        assert run_fingerprint(suite["dynamast"]) == run_fingerprint(direct)

    def test_observed_runs_fold_identical_attribution(self):
        spec = tiny_workload_spec()
        serial = run_suite(spec, systems=("dynamast",), cluster=CLUSTER,
                           seed=3, jobs=1, observed=True, **TINY)
        parallel = run_suite(spec, systems=("dynamast",), cluster=CLUSTER,
                             seed=3, jobs=2, observed=True, **TINY)
        live, summary = serial["dynamast"], parallel["dynamast"]
        assert summary.fingerprint == run_fingerprint(live)
        assert summary.attribution_shares  # folded worker-side
        assert summary.attribution_shares == live.portable().attribution_shares

    def test_mastery_runs_fold_identical_summaries(self):
        """--jobs N mastering runs carry the same scalars as serial,
        and attaching the ledger never perturbs the simulation."""
        spec = tiny_workload_spec()
        kwargs = dict(systems=SYSTEMS, cluster=CLUSTER, seed=3, **TINY)
        plain = run_suite(spec, jobs=1, **kwargs)
        serial = run_suite(spec, jobs=1, mastery=True, **kwargs)
        parallel = run_suite(spec, jobs=2, mastery=True, **kwargs)
        for system in SYSTEMS:
            live, summary = serial[system], parallel[system]
            # Passive recorder: mastering-observed == unobserved.
            assert summary.fingerprint == run_fingerprint(plain[system])
            assert summary.fingerprint == run_fingerprint(live)
            # The folded scalars match the live ledger's summary.
            assert summary.mastery == live.ledger.summary()
            assert summary.mastery["updates_routed"] > 0

    def test_faulted_suite_parity(self):
        spec = tiny_workload_spec()
        kwargs = dict(systems=("dynamast",), cluster=CLUSTER, seed=3,
                      fault_scenario="crash", **TINY)
        serial = run_suite(spec, jobs=1, **kwargs)
        parallel = run_suite(spec, jobs=2, **kwargs)
        assert parallel["dynamast"].fingerprint == \
            run_fingerprint(serial["dynamast"])
        assert parallel["dynamast"].fault_events  # the crash happened

    def test_factory_callable_requires_serial(self):
        with pytest.raises(ValueError, match="Spawn safety"):
            run_suite(lambda: None, systems=("dynamast",), jobs=2)


class TestRunRepeatedParity:
    def test_parallel_matches_serial_across_seeds(self):
        spec = tiny_workload_spec()
        kwargs = dict(seeds=(1, 2), cluster_config=ClusterConfig(**CLUSTER),
                      **TINY)
        serial = run_repeated("dynamast", spec, jobs=1, **kwargs)
        parallel = run_repeated("dynamast", spec, jobs=2, **kwargs)
        for live, summary in zip(serial.runs, parallel.runs):
            assert summary.fingerprint == run_fingerprint(live)
        assert parallel.throughput == serial.throughput
        assert parallel.mean_latency == serial.mean_latency
        assert parallel.p99_latency == serial.p99_latency

    def test_factory_callable_requires_serial(self):
        with pytest.raises(ValueError, match="Spawn safety"):
            run_repeated("dynamast", lambda: None, jobs=2)


class TestPerfMatrixParity:
    CASES = (
        PerfCase("tiny-dynamast", "dynamast", "ycsb", 4, 150.0, 2, seed=5),
        PerfCase("tiny-leap", "leap", "ycsb", 4, 150.0, 2, seed=5),
    )

    def test_parallel_matrix_simulated_quantities_match_serial(self):
        serial = run_matrix(self.CASES, repeats=1, jobs=1)
        parallel = run_matrix(self.CASES, repeats=1, jobs=2)
        assert list(parallel["cases"]) == [case.name for case in self.CASES]
        for name, fresh in parallel["cases"].items():
            base = serial["cases"][name]
            # Simulated quantities are bit-identical; host-side walls and
            # RSS legitimately differ between processes.
            assert fresh["fingerprint"] == base["fingerprint"]
            assert fresh["sim_events"] == base["sim_events"]
            assert fresh["commits"] == base["commits"]
        block = parallel["machine"]["parallel"]
        assert block["jobs"] == 2
        assert block["serial_equivalent_s"] > 0
        assert block["peak_rss_kb_max_worker"] > 0
        assert parallel["settings"]["jobs"] == 2


class TestChaosMatrixParity:
    def test_matrix_cell_matches_run_chaos(self):
        kwargs = dict(num_sites=2, num_clients=4, duration_ms=1500.0,
                      bucket_ms=250.0, seed=4)
        single = run_chaos("dynamast", "crash", **kwargs)
        matrix = run_chaos_matrix(("dynamast",), ("crash",), jobs=2, **kwargs)
        cell = matrix[("dynamast", "crash")]
        assert cell.commits == single.commits
        assert cell.aborts_by_reason == single.aborts_by_reason
        assert cell.fault_events == single.fault_events
        assert cell.buckets == single.buckets
        assert cell.steady_rate() == single.steady_rate()

    def test_matrix_order_is_systems_outer_scenarios_inner(self):
        matrix = run_chaos_matrix(
            ("dynamast", "single-master"), ("crash", "partition"),
            jobs=1, num_sites=2, num_clients=2, duration_ms=400.0, seed=4,
        )
        assert list(matrix) == [
            ("dynamast", "crash"), ("dynamast", "partition"),
            ("single-master", "crash"), ("single-master", "partition"),
        ]
