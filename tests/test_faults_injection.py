"""End-to-end fault injection: bit-identity, survival, and recovery.

The contract the tentpole rides on: a run *without* a FaultPlan is
bit-identical to a build without the faults subsystem (every hook is
gated on ``faults is None`` and the injector draws from its own RNG
stream), while a run *with* a plan exercises crash interruption, live
rejoin, suspicion-based failover, and the presumed-abort termination
protocol — and still terminates.
"""

import hashlib
import json

from repro.bench.harness import run_benchmark
from repro.faults import CrashFault, FaultPlan, build_scenario
from repro.faults.chaos import run_chaos
from repro.sim.config import ClusterConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

#: Digests of the canonical no-faults run, one per system. These pin
#: the *entire* observable outcome (commit count, every commit time,
#: mean latency, per-category traffic bytes) of a fixed seeded run: if
#: fault handling leaks any event, RNG draw, or timing change into an
#: unfaulted run, the digest moves. Regenerate only for intentional
#: simulation-behavior changes.
UNFAULTED_FINGERPRINTS = {
    "dynamast": "f4b91bf309de9b72",
    "single-master": "13cac5bb9216d8cc",
    "multi-master": "4100c659f786474d",
    "partition-store": "8c5574d11d589af9",
    "leap": "5384a0464cc802f4",
}

#: Digests of a canonical crash-restart run, one per system: the same
#: seeded run *with* a fault plan installed. Together with the
#: unfaulted pins these prove that performance work on the simulation
#: substrate changes neither the hardened nor the legacy code paths.
#: The payload additionally covers aborts by reason and the fault
#: timeline, since those are the observable outputs of a faulted run.
FAULTED_FINGERPRINTS = {
    "dynamast": "e0109c603f424e0a",
    "single-master": "11214a1a6c5f9e3b",
    "multi-master": "84c0d4364a45a089",
    "partition-store": "7d0654b2892f495e",
    "leap": "24c39234fcac0eb9",
}


def _workload():
    return YCSBWorkload(
        YCSBConfig(num_partitions=40, rmw_fraction=0.5, zipf_theta=0.5)
    )


def _run(system, fault_plan=None, duration_ms=400.0):
    return run_benchmark(
        system,
        _workload(),
        num_clients=8,
        duration_ms=duration_ms,
        warmup_ms=100.0,
        cluster_config=ClusterConfig(num_sites=3),
        seed=7,
        fault_plan=fault_plan,
    )


def _fingerprint(result):
    payload = {
        "commits": result.metrics.commits,
        "commit_time_sum": round(sum(result.metrics.commit_times), 6),
        "latency_mean": round(result.latency().mean, 6),
        "traffic": sorted(result.traffic_bytes.items()),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


def _fingerprint_faulted(result):
    payload = {
        "commits": result.metrics.commits,
        "commit_time_sum": round(sum(result.metrics.commit_times), 6),
        "traffic": sorted(result.traffic_bytes.items()),
        "aborts_by_reason": sorted(result.metrics.aborts_by_reason.items()),
        "fault_events": [
            (round(event.at_ms, 6), event.kind, event.site)
            for event in result.fault_events
        ],
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


class TestFaultedBitIdentity:
    def test_crash_restart_runs_match_pinned_fingerprints(self):
        for system, expected in FAULTED_FINGERPRINTS.items():
            plan = build_scenario("crash-restart", num_sites=3, duration_ms=1500.0)
            result = _run(system, fault_plan=plan, duration_ms=1500.0)
            assert _fingerprint_faulted(result) == expected, (
                f"{system}: faulted run diverged from the pinned baseline "
                "— an optimization changed hardened-path behavior"
            )


class TestUnfaultedBitIdentity:
    def test_no_plan_runs_match_pre_fault_fingerprints(self):
        for system, expected in UNFAULTED_FINGERPRINTS.items():
            result = _run(system)
            assert _fingerprint(result) == expected, (
                f"{system}: unfaulted run diverged from the pre-fault "
                "baseline — a fault hook leaked into the no-plan path"
            )

    def test_empty_plan_enables_hardened_stack_without_faults(self):
        """An installed injector with an empty plan opts the run into
        the survivable protocol stack (guarded RPCs, presumed-abort
        2PC) — the timing differs from the unhardened paths — but
        nothing fails: no fault events, no fault aborts, and the run
        stays deterministic."""
        for system in ("dynamast", "multi-master"):
            first = _run(system, fault_plan=FaultPlan())
            second = _run(system, fault_plan=FaultPlan())
            assert first.fault_events == []
            assert first.metrics.commits > 0
            for reason in ("timeout", "site_crash"):
                assert first.metrics.aborts_by_reason.get(reason, 0) == 0
            assert _fingerprint(first) == _fingerprint(second)


class TestDeterminism:
    def test_same_seed_same_plan_same_run(self):
        plan = build_scenario("lossy", num_sites=3, duration_ms=400.0)
        first = _run("dynamast", fault_plan=plan)
        second = _run("dynamast", fault_plan=plan)
        assert first.metrics.commits == second.metrics.commits
        assert first.metrics.commit_times == second.metrics.commit_times
        assert first.metrics.aborts_by_reason == second.metrics.aborts_by_reason
        assert first.traffic_bytes == second.traffic_bytes


class TestCrashRestart:
    def test_dynamast_survives_and_site_rejoins(self):
        plan = FaultPlan(crashes=(
            CrashFault(1, at_ms=1000.0, restart_at_ms=2000.0),
        ))
        result = _run("dynamast", fault_plan=plan, duration_ms=3000.0)
        kinds = [(event.kind, event.site) for event in result.fault_events]
        assert ("crash", 1) in kinds and ("restart", 1) in kinds
        # Survived: commits continue through the outage at scale.
        assert result.metrics.commits > 1000
        assert result.metrics.aborts_by_reason.get("site_crash", 0) == 0

        cluster = result.system.cluster
        restarted = cluster.sites[1]
        assert restarted.alive
        assert restarted.epoch == 1
        # Mastership is a partition of the partition space: every
        # partition has exactly one master among the alive sites.
        mastered = [p for site in cluster.sites for p in site.mastered]
        assert len(mastered) == len(set(mastered)) == 40

    def test_restarted_site_converges_with_survivors(self):
        plan = FaultPlan(crashes=(
            CrashFault(1, at_ms=500.0, restart_at_ms=1000.0),
        ))
        result = _run("dynamast", fault_plan=plan, duration_ms=2000.0)
        cluster = result.system.cluster
        # Let replication drain (clients keep running a moment longer,
        # then quiesce; the watch/notify machinery flushes pending
        # refreshes within a few intervals).
        cluster.env.run(until=cluster.env.now + 200.0)
        restarted = cluster.sites[1]
        survivor = cluster.sites[0]
        for origin in range(3):
            lag = survivor.svv[origin] - restarted.svv[origin]
            assert abs(lag) <= 64, (
                f"restarted site never caught up on origin {origin}: "
                f"{restarted.svv.to_tuple()} vs {survivor.svv.to_tuple()}"
            )
        # The rejoined replica serves reads from replayed state: its
        # database holds the same records as a survivor's.
        for table_name, table in survivor.database.tables.items():
            for record in table:
                other = restarted.database.record(record.key)
                assert other is not None, f"missing {record.key} after rejoin"

    def test_comparators_degrade_but_terminate(self):
        plan = FaultPlan(crashes=(CrashFault(1, at_ms=500.0),))
        for system in ("multi-master", "partition-store", "leap"):
            result = _run(system, fault_plan=plan, duration_ms=1500.0)
            aborts = result.metrics.aborts_by_reason
            assert aborts.get("site_crash", 0) > 0, (
                f"{system}: fixed mastership must lose txns to the crash"
            )
            assert result.metrics.commits > 0


class TestAvailabilityTimeline:
    def test_chaos_report_shows_dip_and_recovery(self):
        report = run_chaos(
            "partition-store",
            "crash-restart",
            num_sites=3,
            num_clients=8,
            duration_ms=3000.0,
            bucket_ms=250.0,
            seed=7,
        )
        assert [kind for _, kind, _ in report.fault_events] == ["crash", "restart"]
        crash_ms = report.fault_events[0][0]
        restart_ms = report.fault_events[1][0]
        steady = report.steady_rate()
        assert steady > 0
        outage = [
            b for b in report.buckets
            if crash_ms <= b.start_ms and b.start_ms + 250.0 <= restart_ms
        ]
        assert outage, "no full bucket inside the outage window"
        assert min(b.commits_per_s for b in outage) < 0.8 * steady, (
            "a fixed-placement store must dip while a site is down"
        )
        assert all(b.sites_up == 2 for b in outage)
        assert report.recovered(fraction=0.5), (
            f"rate never recovered: steady={steady}, final={report.final_rate()}"
        )

    def test_dynamast_rides_through_the_outage(self):
        report = run_chaos(
            "dynamast",
            "crash-restart",
            num_sites=3,
            num_clients=8,
            duration_ms=3000.0,
            bucket_ms=250.0,
            seed=7,
        )
        assert report.aborts_by_reason == {}
        # Remastering + replicas keep every bucket productive.
        assert all(bucket.commits_per_s > 0 for bucket in report.buckets)
        assert report.recovered(fraction=0.5)

    def test_csv_round_trip(self, tmp_path):
        report = run_chaos(
            "dynamast", "crash", num_sites=3, num_clients=4,
            duration_ms=600.0, bucket_ms=200.0, seed=7,
        )
        path = tmp_path / "timeline.csv"
        report.write_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "start_ms,commits_per_s,aborts_per_s,sites_up"
        assert len(lines) == len(report.buckets) + 1
