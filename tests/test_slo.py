"""The streaming SLO engine (`repro slo`).

Covers the declarative spec layer, the tumbling-window metric math,
multi-window burn-rate alerting and hysteresis, the four runtime
invariant monitors, blame attribution, ground-truth fault correlation
(MTTD/MTTR), the JSONL/CSV/Prometheus exports and HTML dashboard, and
the acceptance pins: faulted runs are detected, unfaulted runs of all
five systems are invariant-clean, SLO-monitored runs are bit-identical
to unmonitored ones, and parallel folding matches serial.
"""

import json

import pytest

from repro.bench.export import FIELDS, attach_slo, rows_from, to_csv
from repro.bench.harness import run_benchmark
from repro.bench.parallel import (
    RunSpec,
    WorkloadSpec,
    execute_specs,
    run_fingerprint,
)
from repro.faults import FaultPlan, build_scenario
from repro.faults.chaos import defense_setup, run_chaos
from repro.obs import (
    DEFAULT_SLOS,
    NULL_SLO,
    Incident,
    SloEngine,
    SloSpec,
    quick_slos,
    render_dashboard,
    write_dashboard,
)
from repro.obs.slo import SCHEMA, _coalesce, _evaluate, _SloState, _Window, load_jsonl
from repro.sim.config import ClusterConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

ALL_SYSTEMS = ("dynamast", "single-master", "multi-master", "partition-store", "leap")


# ---------------------------------------------------------------------------
# Stubs: the minimal pure-read surface the engine touches.
# ---------------------------------------------------------------------------


class StubSite:
    def __init__(self, index, num_sites=3, alive=True, mastered=(), epoch=0):
        self.index = index
        self.num_sites = num_sites
        self.alive = alive
        self.mastered = set(mastered) if mastered else {index}
        self.epoch = epoch
        self.svv = [0] * num_sites


class StubQueue:
    def __init__(self, offered=0, admitted=0, shed=0, taken=0, backlog=0):
        self.offered = offered
        self.admitted = admitted
        self.shed = shed
        self.taken = taken
        self.backlog = backlog

    def __len__(self):
        return self.backlog


class StubDetector:
    def __init__(self, episodes=0, false_suspicions=0, suspected=()):
        self.suspicion_episodes = episodes
        self.false_suspicions = false_suspicions
        self.suspected = set(suspected)


class StubInjector:
    def __init__(self, detector=None, plan=None):
        self.detector = detector if detector is not None else StubDetector()
        self.plan = plan if plan is not None else FaultPlan()


class StubTable:
    def __init__(self, mapping):
        self._mapping = dict(mapping)

    def snapshot(self):
        return dict(self._mapping)


class StubSelector:
    def __init__(self, mapping):
        self.table = StubTable(mapping)


class StubSystem:
    def __init__(self, sites, selector=None):
        self.sites = sites
        if selector is not None:
            self.selector = selector


class StubOutcome:
    def __init__(self, committed=True, remastered=False):
        self.committed = committed
        self.remastered = remastered


def _stub_engine(specs=(), window_ms=100.0, sites=None, selector=None,
                 injector=None, queues=(), duration_ms=1000.0):
    engine = SloEngine(specs=specs, window_ms=window_ms)
    if sites is None:
        sites = [StubSite(i) for i in range(3)]
    engine.install(
        StubSystem(sites, selector=selector), injector=injector,
        queues=list(queues), duration_ms=duration_ms, warmup_ms=0.0,
    )
    return engine, sites


def _window(start=0.0, end=250.0, commits=0, aborts=0, latencies=(),
            remastered=0, offered=0, shed=0, sites_alive=3, sites_total=3):
    window = _Window(start, end)
    window.commits = commits
    window.aborts = aborts
    window.latencies = list(latencies)
    window.remastered = remastered
    window.offered = offered
    window.shed = shed
    window.sites_alive = sites_alive
    window.sites_total = sites_total
    return window


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


class TestSloSpec:
    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown SLO metric"):
            SloSpec("x", metric="latency_p50", target=1.0)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError, match="bound"):
            SloSpec("x", metric="abort_rate", target=0.1, bound="sideways")

    def test_requires_exactly_one_threshold_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            SloSpec("x", metric="abort_rate")
        with pytest.raises(ValueError, match="exactly one"):
            SloSpec("x", metric="abort_rate", target=0.1, baseline_factor=2.0)

    def test_rejects_degenerate_window_counts(self):
        with pytest.raises(ValueError, match=">= 1"):
            SloSpec("x", metric="abort_rate", target=0.1, long_windows=0)
        with pytest.raises(ValueError, match=">= 1"):
            SloSpec("x", metric="abort_rate", target=0.1, min_samples=0)

    def test_to_dict_round_trips_fields(self):
        spec = SloSpec("p99", metric="p99_latency_ms", baseline_factor=3.0,
                       floor=5.0)
        data = spec.to_dict()
        assert data["name"] == "p99"
        assert data["baseline_factor"] == 3.0
        assert data["target"] is None

    def test_default_slos_include_site_liveness(self):
        liveness = {spec.name: spec for spec in DEFAULT_SLOS}["site_liveness"]
        assert liveness.bound == "lower"
        assert liveness.target == 1.0
        assert liveness.min_samples == 1
        assert liveness.long_windows == 1

    def test_engine_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window_ms"):
            SloEngine(window_ms=0.0)

    def test_quick_slos_shortens_baselines_only(self):
        engine = quick_slos()
        for spec in engine.specs:
            if spec.baseline_factor is not None:
                assert spec.baseline_windows == 2
        absolute = {s.name for s in engine.specs if s.target is not None}
        stock = {s.name for s in DEFAULT_SLOS if s.target is not None}
        assert absolute == stock


# ---------------------------------------------------------------------------
# Window metric math
# ---------------------------------------------------------------------------


class TestEvaluate:
    def test_availability_and_abort_rate(self):
        window = _window(commits=3, aborts=1)
        assert _evaluate("availability", (window,)) == (0.75, 4)
        assert _evaluate("abort_rate", (window,)) == (0.25, 4)

    def test_empty_window_has_no_data(self):
        window = _window()
        assert _evaluate("availability", (window,)) == (None, 0)
        assert _evaluate("p99_latency_ms", (window,)) == (None, 0)
        assert _evaluate("remaster_rate", (window,)) == (None, 0)
        assert _evaluate("goodput_ratio", (window,)) == (None, 0)

    def test_p99_is_nearest_rank_across_windows(self):
        first = _window(latencies=[5.0, 1.0])
        second = _window(latencies=[3.0])
        value, samples = _evaluate("p99_latency_ms", (first, second))
        assert value == 5.0 and samples == 3

    def test_remaster_rate_per_commit(self):
        window = _window(commits=4, remastered=2)
        assert _evaluate("remaster_rate", (window,)) == (0.5, 4)

    def test_open_loop_ratios_need_offered_load(self):
        window = _window(commits=4, offered=10, shed=2)
        assert _evaluate("goodput_ratio", (window,)) == (0.4, 10)
        assert _evaluate("shed_rate", (window,)) == (0.2, 10)
        closed = _window(commits=4)
        assert _evaluate("shed_rate", (closed,)) == (None, 0)

    def test_site_liveness_fraction(self):
        window = _window(sites_alive=2, sites_total=3)
        value, samples = _evaluate("site_liveness", (window,))
        assert value == pytest.approx(2 / 3)
        assert samples == 3

    def test_unknown_metric_with_offered_data_raises(self):
        window = _window(offered=5)
        with pytest.raises(ValueError, match="unknown SLO metric"):
            _evaluate("bogus", (window,))


# ---------------------------------------------------------------------------
# Burn-rate gate, hysteresis, baseline calibration
# ---------------------------------------------------------------------------


def _drive(state, windows):
    """Feed windows through a state the way the engine does (the
    current window is part of the long-horizon slice)."""
    recent = []
    opened = []
    for window in windows:
        recent.append(window)
        incident = state.close(window, recent, lambda: ())
        if incident is not None:
            opened.append(incident)
    return opened


class TestBurnAndHysteresis:
    SPEC = SloSpec("aborts", metric="abort_rate", target=0.25,
                   long_windows=2, clear_windows=2, min_samples=5)

    def test_single_noisy_window_does_not_open(self):
        state = _SloState(self.SPEC)
        opened = _drive(state, [
            _window(0, 250, commits=100),
            _window(250, 500, commits=2, aborts=8),
        ])
        assert opened == []
        assert state.open is None
        assert state.breached_windows == 1  # short breach, burn-gated

    def test_sustained_breach_opens_then_hysteresis_clears(self):
        state = _SloState(self.SPEC)
        opened = _drive(state, [
            _window(0, 250, commits=100),
            _window(250, 500, commits=2, aborts=8),
            _window(500, 750, commits=2, aborts=8),
            _window(750, 1000, commits=10),
            _window(1000, 1250, commits=10),
        ])
        assert len(opened) == 1
        incident = opened[0]
        assert incident.onset_ms == 750.0
        assert incident.clear_ms == 1250.0
        assert incident.peak_value == pytest.approx(0.8)
        assert incident.peak_severity == pytest.approx(0.8 / 0.25)
        assert state.open is None

    def test_one_clean_window_does_not_clear(self):
        state = _SloState(self.SPEC)
        _drive(state, [
            _window(0, 250, commits=100),
            _window(250, 500, commits=2, aborts=8),
            _window(500, 750, commits=2, aborts=8),
            _window(750, 1000, commits=10),
        ])
        assert state.open is not None
        assert state.open.clear_ms is None

    def test_small_windows_neither_breach_nor_clear(self):
        state = _SloState(self.SPEC)
        _drive(state, [
            _window(0, 250, commits=100),
            _window(250, 500, commits=2, aborts=8),
            _window(500, 750, commits=2, aborts=8),
            # 2 samples < min_samples=5: pure abort storm, yet it is
            # not evidence — and it must not count as a clean window.
            _window(750, 1000, aborts=2),
        ])
        assert state.open is not None
        assert state.clean_streak == 0

    def test_peak_severity_tracks_worst_window(self):
        state = _SloState(self.SPEC)
        _drive(state, [
            _window(0, 250, commits=100),
            _window(250, 500, commits=2, aborts=8),
            _window(500, 750, commits=2, aborts=8),
            _window(750, 1000, aborts=10),  # 100% aborts while open
        ])
        assert state.open.peak_value == pytest.approx(1.0)
        assert state.open.peak_severity == pytest.approx(1.0 / 0.25)


class TestBaselineCalibration:
    SPEC = SloSpec("p99", metric="p99_latency_ms", baseline_factor=2.0,
                   floor=1.0, baseline_windows=3, long_windows=4,
                   clear_windows=2, min_samples=2)

    def test_threshold_arms_from_median_baseline(self):
        state = _SloState(self.SPEC)
        _drive(state, [
            _window(0, 250, commits=2, latencies=[1.0, 1.0]),
            _window(250, 500, commits=2, latencies=[2.0, 2.0]),
        ])
        assert state.threshold is None  # still calibrating
        _drive(state, [_window(500, 750, commits=2, latencies=[9.0, 9.0])])
        assert state.threshold == pytest.approx(4.0)  # median 2.0 * 2

    def test_calibration_windows_carry_no_threshold_in_series(self):
        state = _SloState(self.SPEC)
        _drive(state, [
            _window(0, 250, commits=2, latencies=[1.0, 1.0]),
            _window(250, 500, commits=2, latencies=[2.0, 2.0]),
            _window(500, 750, commits=2, latencies=[9.0, 9.0]),
        ])
        assert [entry[2] for entry in state.series] == [None, None, None]
        assert not any(entry[4] for entry in state.series)

    def test_floor_bounds_a_tiny_baseline(self):
        spec = SloSpec("p99", metric="p99_latency_ms", baseline_factor=2.0,
                       floor=5.0, baseline_windows=1, min_samples=1)
        state = _SloState(spec)
        _drive(state, [_window(0, 250, commits=1, latencies=[0.1])])
        assert state.threshold == 5.0

    def test_small_windows_do_not_pollute_the_baseline(self):
        state = _SloState(self.SPEC)
        _drive(state, [_window(0, 250, commits=1, latencies=[500.0])])
        assert state._baseline == []

    def test_breach_after_arming_opens_incident(self):
        state = _SloState(self.SPEC)
        opened = _drive(state, [
            _window(0, 250, commits=2, latencies=[1.0, 1.0]),
            _window(250, 500, commits=2, latencies=[2.0, 2.0]),
            _window(500, 750, commits=2, latencies=[9.0, 9.0]),
            _window(750, 1000, commits=5, latencies=[10.0] * 5),
        ])
        assert len(opened) == 1
        assert opened[0].threshold == pytest.approx(4.0)
        assert opened[0].peak_value == pytest.approx(10.0)


class TestCoalesce:
    def test_nearby_windows_merge_into_one_span(self):
        spans = _coalesce(
            [("crash", 0, 100.0, 200.0), ("slow", 1, 250.0, 400.0)],
            gap_ms=100.0,
        )
        assert len(spans) == 1
        assert spans[0]["kinds"] == {"crash", "slow"}
        assert spans[0]["sites"] == {0, 1}
        assert spans[0]["end_ms"] == 400.0

    def test_distant_windows_stay_separate(self):
        spans = _coalesce(
            [("crash", 0, 100.0, 200.0), ("slow", 1, 250.0, 400.0)],
            gap_ms=10.0,
        )
        assert len(spans) == 2


# ---------------------------------------------------------------------------
# Null engine
# ---------------------------------------------------------------------------


class TestNullEngine:
    def test_null_is_inert(self):
        assert NULL_SLO.enabled is False
        assert NULL_SLO.install(StubSystem([])) is None
        assert NULL_SLO.observe_txn(None, StubOutcome(), 1.0, 0.0) is None
        assert NULL_SLO.finalize(100.0) is None
        assert NULL_SLO.incidents == []
        assert NULL_SLO.violations == []
        assert NULL_SLO.false_positives == []
        assert NULL_SLO.summary() == {}


# ---------------------------------------------------------------------------
# Engine window mechanics (stub-driven)
# ---------------------------------------------------------------------------


class TestEngineWindows:
    def test_observe_rolls_windows_and_finalize_closes_tail(self):
        engine, _ = _stub_engine(window_ms=100.0)
        engine.observe_txn(None, StubOutcome(), 5.0, now=10.0)
        engine.observe_txn(None, StubOutcome(), 5.0, now=450.0)
        engine.finalize(1000.0)
        assert engine.windows_closed == 10
        assert engine.run_end_ms == 1000.0
        assert engine._window is None

    def test_finalize_closes_partial_trailing_window(self):
        engine, _ = _stub_engine(window_ms=100.0)
        engine.finalize(250.0)
        assert engine.windows_closed == 3  # [0,100) [100,200) [200,250)

    def test_finalize_is_idempotent(self):
        engine, _ = _stub_engine(window_ms=100.0)
        engine.finalize(400.0)
        closed = engine.windows_closed
        engine.finalize(400.0)
        assert engine.windows_closed == closed

    def test_queue_counters_attribute_as_deltas(self):
        queue = StubQueue(offered=5, admitted=5, taken=5)
        engine, _ = _stub_engine(window_ms=100.0, queues=[queue])
        first = engine._window
        engine._close_window(first)
        assert (first.offered, first.shed) == (5, 0)
        queue.offered, queue.admitted, queue.shed, queue.taken = 12, 9, 3, 9
        second = engine._window
        engine._close_window(second)
        assert (second.offered, second.shed) == (7, 3)

    def test_windows_start_at_warmup(self):
        engine = SloEngine(specs=(), window_ms=100.0)
        engine.install(StubSystem([StubSite(0)]), duration_ms=1000.0,
                       warmup_ms=300.0)
        assert engine._window.start == 300.0
        assert engine._window.end == 400.0


# ---------------------------------------------------------------------------
# Runtime invariants
# ---------------------------------------------------------------------------


class TestInvariants:
    def test_clean_cluster_has_no_violations(self):
        queue = StubQueue(offered=10, admitted=8, shed=2, taken=7, backlog=1)
        engine, _ = _stub_engine(
            queues=[queue], injector=StubInjector(),
            selector=StubSelector({0: 0, 1: 1, 2: 2}),
        )
        engine.finalize(1000.0)
        assert engine.violations == []

    def test_duplicate_mastership_is_one_violation_per_episode(self):
        sites = [StubSite(0, mastered={5}), StubSite(1, mastered={5}),
                 StubSite(2, mastered={2})]
        engine, _ = _stub_engine(sites=sites)
        engine._close_window(engine._window)
        engine._close_window(engine._window)  # still violated: same episode
        assert len(engine.violations) == 1
        violation = engine.violations[0]
        assert violation.objective == "invariant:single_master"
        assert violation.kind == "invariant"
        assert violation.blamed_sites == (0, 1)
        assert "partition 5" in violation.detail
        assert violation.clear_ms is None

    def test_violation_clears_when_the_property_holds_again(self):
        sites = [StubSite(0, mastered={5}), StubSite(1, mastered={5})]
        engine, _ = _stub_engine(sites=sites, window_ms=100.0)
        engine._close_window(engine._window)
        sites[1].mastered = {7}
        engine._close_window(engine._window)
        assert engine.violations[0].clear_ms == 200.0

    def test_dead_sites_do_not_count_as_duplicate_masters(self):
        sites = [StubSite(0, mastered={5}), StubSite(1, mastered={5}, alive=False)]
        engine, _ = _stub_engine(sites=sites)
        engine.finalize(1000.0)
        assert engine.violations == []

    def test_selector_mapping_to_unknown_site_is_a_violation(self):
        engine, _ = _stub_engine(selector=StubSelector({3: 7}))
        engine._close_window(engine._window)
        assert any("invalid site 7" in v.detail for v in engine.violations)

    def test_admission_conservation_offered_mismatch(self):
        queue = StubQueue(offered=10, admitted=6, shed=3, taken=6)
        engine, _ = _stub_engine(queues=[StubQueue(offered=4, admitted=4, taken=4),
                                         queue])
        engine._close_window(engine._window)
        violation = engine.violations[0]
        assert violation.objective == "invariant:admission_conservation"
        assert violation.blamed_sites == (1,)
        assert "offered 10" in violation.detail

    def test_admission_conservation_backlog_mismatch(self):
        queue = StubQueue(offered=10, admitted=10, taken=6, backlog=1)
        engine, _ = _stub_engine(queues=[queue])
        engine._close_window(engine._window)
        assert "admitted 10 != taken 6 + backlog 1" in engine.violations[0].detail

    def test_svv_regression_within_epoch_is_a_violation(self):
        engine, sites = _stub_engine(window_ms=100.0)
        sites[1].svv = [0, 5, 0]
        engine._close_window(engine._window)
        sites[1].svv = [0, 3, 0]
        engine._close_window(engine._window)
        violation = engine.violations[0]
        assert violation.objective == "invariant:replay_monotonic"
        assert violation.blamed_sites == (1,)
        assert "regressed 5 -> 3" in violation.detail

    def test_epoch_bump_forgives_svv_reset(self):
        engine, sites = _stub_engine(window_ms=100.0)
        sites[1].svv = [0, 5, 0]
        engine._close_window(engine._window)
        sites[1].svv = [0, 0, 0]
        sites[1].epoch += 1  # crash-recovery reset: a fresh baseline
        engine._close_window(engine._window)
        assert engine.violations == []

    def test_dead_site_svv_is_not_checked(self):
        engine, sites = _stub_engine(window_ms=100.0)
        sites[1].svv = [0, 5, 0]
        engine._close_window(engine._window)
        sites[1].alive = False
        sites[1].svv = [0, 0, 0]
        engine._close_window(engine._window)
        sites[1].alive = True
        engine._close_window(engine._window)
        assert engine.violations == []

    def test_detector_false_suspicions_cannot_exceed_episodes(self):
        injector = StubInjector(StubDetector(episodes=1, false_suspicions=2))
        engine, _ = _stub_engine(injector=injector)
        engine._close_window(engine._window)
        assert any(
            v.objective == "invariant:detector_sanity"
            and "false_suspicions 2" in v.detail
            for v in engine.violations
        )

    def test_detector_episode_counter_must_be_monotonic(self):
        injector = StubInjector(StubDetector(episodes=5))
        engine, _ = _stub_engine(injector=injector, window_ms=100.0)
        engine._close_window(engine._window)
        injector.detector.suspicion_episodes = 3
        engine._close_window(engine._window)
        assert any("regressed 5 -> 3" in v.detail for v in engine.violations)

    def test_detector_suspecting_unknown_site_is_a_violation(self):
        injector = StubInjector(StubDetector(suspected={9}))
        engine, _ = _stub_engine(injector=injector)
        engine._close_window(engine._window)
        assert any("unknown site 9" in v.detail for v in engine.violations)


class TestBlame:
    def test_dead_sites_win(self):
        sites = [StubSite(0), StubSite(1, alive=False), StubSite(2)]
        engine, _ = _stub_engine(
            sites=sites, injector=StubInjector(StubDetector(suspected={0})),
        )
        assert engine._blame() == (1,)

    def test_suspected_sites_when_all_alive(self):
        engine, _ = _stub_engine(
            injector=StubInjector(StubDetector(suspected={2})),
        )
        assert engine._blame() == (2,)

    def test_out_of_range_suspicions_are_ignored(self):
        engine, _ = _stub_engine(
            injector=StubInjector(StubDetector(suspected={9})),
            queues=[StubQueue(), StubQueue(backlog=4), StubQueue(backlog=2)],
        )
        assert engine._blame() == (1,)

    def test_no_signal_blames_nobody(self):
        engine, _ = _stub_engine(queues=[StubQueue(), StubQueue()])
        assert engine._blame() == ()


# ---------------------------------------------------------------------------
# Incident round-trip
# ---------------------------------------------------------------------------


class TestIncident:
    def test_dict_round_trip(self):
        incident = Incident(
            objective="abort_rate", onset_ms=500.0, clear_ms=1250.0,
            threshold=0.25, peak_value=0.8, peak_severity=3.2,
            blamed_sites=(1, 2), detail="abort_rate=0.8 > 0.25",
        )
        assert Incident.from_dict(incident.to_dict()).to_dict() == incident.to_dict()

    def test_open_incident_duration_runs_to_end(self):
        incident = Incident(objective="x", onset_ms=400.0, clear_ms=None)
        assert incident.duration_ms(1000.0) == 600.0
        incident.clear_ms = 700.0
        assert incident.duration_ms(1000.0) == 300.0


# ---------------------------------------------------------------------------
# End-to-end runs (module-scoped: these simulate seconds of cluster time)
# ---------------------------------------------------------------------------


def _workload():
    return YCSBWorkload(
        YCSBConfig(num_partitions=40, rmw_fraction=0.5, zipf_theta=0.5)
    )


def _slo_run(system, scenario, slo, duration_ms=6000.0, seed=0):
    workload = _workload()
    rpc, weights = defense_setup("adaptive", workload)
    plan = (build_scenario(scenario, num_sites=3, duration_ms=duration_ms)
            if scenario else None)
    return run_benchmark(
        system,
        workload,
        num_clients=8,
        duration_ms=duration_ms,
        warmup_ms=0.0,
        cluster_config=ClusterConfig(num_sites=3, rpc=rpc),
        weights=weights,
        seed=seed,
        fault_plan=plan,
        slo=slo,
    )


@pytest.fixture(scope="module")
def fail_slow():
    engine = quick_slos()
    result = _slo_run("dynamast", "fail_slow_master", engine)
    return result, engine


@pytest.fixture(scope="module")
def crash():
    engine = quick_slos()
    result = _slo_run("dynamast", "crash", engine)
    return result, engine


@pytest.fixture(scope="module")
def unmonitored_fail_slow():
    return _slo_run("dynamast", "fail_slow_master", None)


class TestFaultDetection:
    def test_fail_slow_fault_window_is_detected(self, fail_slow):
        result, engine = fail_slow
        assert result.slo is engine
        assert len(engine.correlation) >= 1
        for span in engine.correlation:
            assert span["detected"]
            assert span["incidents"]  # >= 1 incident per fault window
            assert span["detection_ms"] >= 0.0
        summary = engine.summary()
        assert summary["missed_faults"] == 0.0
        assert summary["true_positives"] >= 1.0
        assert summary["mttd_mean_ms"] >= 0.0

    def test_fail_slow_has_no_invariant_violations(self, fail_slow):
        _, engine = fail_slow
        assert engine.violations == []
        assert engine.summary()["violations"] == 0.0

    def test_crash_is_detected_via_site_liveness(self, crash):
        _, engine = crash
        assert len(engine.correlation) >= 1
        span = engine.correlation[0]
        assert "crash" in span["kinds"]
        assert span["detected"]
        liveness = [i for i in engine.incidents if i.objective == "site_liveness"]
        assert liveness, "a dead replica must itself be an incident"
        assert liveness[0].blamed_sites  # the dead site is named
        assert set(liveness[0].blamed_sites) <= {0, 1, 2}

    def test_crash_without_restart_never_recovers(self, crash):
        _, engine = crash
        summary = engine.summary()
        assert summary["violations"] == 0.0
        # The site stays down, so the liveness incident never clears
        # and MTTR is not applicable (-1 sentinel).
        assert summary["mttr_mean_ms"] == -1.0

    def test_run_chaos_threads_the_engine_through(self):
        engine = quick_slos()
        report = run_chaos(
            "dynamast", "crash", num_clients=4, duration_ms=1200.0,
            bucket_ms=300.0, slo=engine,
        )
        assert report.result.slo is engine
        assert engine.run_end_ms == 1200.0


class TestUnfaultedRuns:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_invariants_hold_on_every_system(self, system):
        engine = quick_slos()
        _slo_run(system, None, engine, duration_ms=3000.0)
        assert engine.violations == []
        assert engine.summary()["violations"] == 0.0
        # No injected faults: any incident is a false positive. leap's
        # p99 genuinely drifts several-fold under contention as queues
        # build (real behavior, not noise), so only the other four
        # systems pin a silent SLO verdict.
        if system != "leap":
            assert engine.incidents == []
            assert engine.false_positives == []


class TestDeterminism:
    def test_slo_on_matches_slo_off_bit_for_bit(self, fail_slow,
                                                unmonitored_fail_slow):
        monitored, _ = fail_slow
        assert run_fingerprint(monitored) == run_fingerprint(unmonitored_fail_slow)
        assert monitored.metrics.commits == unmonitored_fail_slow.metrics.commits


class TestParallelFolding:
    def test_jobs2_summary_matches_serial(self):
        workload = WorkloadSpec.of(
            "ycsb", num_partitions=40, rmw_fraction=0.5, zipf_theta=0.5
        )
        specs = [
            RunSpec(
                system=system, workload=workload, num_clients=8,
                duration_ms=2500.0, warmup_ms=0.0,
                cluster=ClusterConfig(num_sites=3), seed=0,
                fault_scenario="fail_slow_master", slo=True,
                label=f"{system}-fail-slow",
            )
            for system in ("dynamast", "single-master")
        ]
        serial = execute_specs(specs, jobs=1)
        parallel = execute_specs(specs, jobs=2)
        for left, right in zip(serial, parallel):
            assert left.fingerprint == right.fingerprint
            assert left.slo == right.slo
            assert left.slo  # the verdict folded through the worker
            assert "incidents" in left.slo and "mttd_mean_ms" in left.slo


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------


class TestJsonlExport:
    def test_round_trip(self, fail_slow, tmp_path):
        _, engine = fail_slow
        path = tmp_path / "slo.jsonl"
        engine.write_jsonl(str(path))
        data = load_jsonl(str(path))
        header = data["header"]
        assert header["schema"] == SCHEMA
        assert header["window_ms"] == engine.window_ms
        assert header["run_end_ms"] == engine.run_end_ms
        assert header["incidents"] == engine.summary()["incidents"]
        assert len(header["specs"]) == len(engine.specs)
        assert len(data["incidents"]) == len(engine.incidents)
        assert data["incidents"][0] == engine.incidents[0].to_dict()
        assert data["spans"] == engine.correlation
        series = engine.window_series()
        assert len(data["windows"]) == sum(len(s) for s in series.values())

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "nope/9"}) + "\n")
        with pytest.raises(ValueError, match="not a repro-slo/1 file"):
            load_jsonl(str(path))

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_jsonl(str(path))


class TestCsvAndPrometheus:
    def test_csv_has_one_row_per_incident(self, fail_slow, tmp_path):
        _, engine = fail_slow
        path = tmp_path / "slo.csv"
        engine.write_csv(str(path))
        lines = path.read_text().strip().split("\n")
        assert lines[0].startswith("kind,objective,onset_ms")
        assert len(lines) == 1 + len(engine.incidents) + len(engine.violations)
        assert lines[1].startswith("slo,")

    def test_prometheus_exposition(self, fail_slow):
        _, engine = fail_slow
        text = engine.to_prometheus({"system": "dynamast"})
        assert "# TYPE repro_slo_incidents_total counter" in text
        assert 'system="dynamast"' in text
        assert "# TYPE repro_slo_mttd_mean_ms gauge" in text
        assert text.endswith("\n")

    def test_prometheus_zero_state_without_labels(self):
        engine = SloEngine()
        engine.finalize(0.0)
        text = engine.to_prometheus()
        assert "repro_slo_incidents_total 0" in text
        assert "repro_slo_violations_total 0" in text


class TestBenchExportColumns:
    def test_detector_columns_are_first_class_fields(self):
        assert "detection_latency_ms" in FIELDS
        assert "quarantine_ms" in FIELDS

    def test_slo_columns_ride_along(self, fail_slow):
        result, engine = fail_slow
        row = rows_from(result)[0]
        summary = engine.summary()
        assert row["slo_incidents"] == summary["incidents"]
        assert row["slo_mttd_mean_ms"] == summary["mttd_mean_ms"]
        header = to_csv(result).split("\n")[0]
        assert "slo_incidents" in header
        assert "detection_latency_ms" in header

    def test_attach_slo_accepts_a_folded_verdict(self):
        class Folded:
            slo = {"incidents": 2.0, "violations": 0.0}

        row = {}
        attach_slo(row, Folded())
        assert row == {"slo_incidents": 2.0, "slo_violations": 0.0}

    def test_attach_slo_is_a_noop_without_an_engine(self):
        class Bare:
            slo = None

        row = {}
        attach_slo(row, Bare())
        assert row == {}


# ---------------------------------------------------------------------------
# Dashboard
# ---------------------------------------------------------------------------


class TestDashboard:
    def test_renders_all_sections(self, fail_slow):
        result, engine = fail_slow
        page = render_dashboard(result)
        assert page.startswith("<!DOCTYPE html>")
        assert "<svg" in page
        assert "<h2>Verdict</h2>" in page
        assert "Fault correlation (injector ground truth)" in page
        assert "<h2>Objective timelines</h2>" in page
        assert "<h2>Incident ledger</h2>" in page
        for spec in engine.specs:
            assert spec.name in page

    def test_render_is_deterministic(self, fail_slow):
        result, _ = fail_slow
        assert render_dashboard(result) == render_dashboard(result)

    def test_title_is_escaped(self, fail_slow):
        result, _ = fail_slow
        page = render_dashboard(result, title='<x> & "q"')
        assert "<x>" not in page
        assert "&lt;x&gt; &amp; &quot;q&quot;" in page

    def test_write_dashboard(self, fail_slow, tmp_path):
        result, _ = fail_slow
        path = tmp_path / "dash.html"
        write_dashboard(result, str(path))
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_requires_a_monitored_run(self, unmonitored_fail_slow):
        with pytest.raises(ValueError, match="SloEngine"):
            render_dashboard(unmonitored_fail_slow)
