"""Edge-case tests for the simulation kernel's error handling."""

import pytest

from repro.sim.core import Environment, SimulationError


class TestKernelErrors:
    def test_step_on_empty_queue(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_deadlock_detected_by_run_until_complete(self):
        env = Environment()
        gate = env.event()  # never triggered

        def stuck():
            yield gate

        process = env.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run_until_complete(process)

    def test_run_until_complete_propagates_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise KeyError("boom")

        process = env.process(failing())
        with pytest.raises(KeyError):
            env.run_until_complete(process)

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_event_value_before_trigger(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_condition_mixing_environments_rejected(self):
        env_a, env_b = Environment(), Environment()
        event_b = env_b.event()
        with pytest.raises(SimulationError):
            env_a.all_of([env_a.event(), event_b])

    def test_repr_shows_state(self):
        env = Environment()
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "ok" in repr(event)


class TestAnyOfFailure:
    def test_first_failure_propagates(self):
        env = Environment()
        bad = env.event()
        caught = []

        def waiter():
            try:
                yield env.any_of([bad, env.timeout(10.0)])
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter())

        def failer():
            yield env.timeout(1.0)
            bad.fail(ValueError("first"))

        env.process(failer())
        env.run()
        assert caught == ["first"]

    def test_late_failure_after_trigger_is_defused(self):
        env = Environment()
        slow_fail = env.event()
        results = []

        def waiter():
            value = yield env.any_of([env.timeout(1.0, "fast"), slow_fail])
            results.append(value)

        env.process(waiter())

        def failer():
            yield env.timeout(5.0)
            slow_fail.fail(RuntimeError("late"))

        env.process(failer())
        env.run()  # must not raise: the condition defuses the late failure
        assert results == ["fast"]


class TestAllOfFailure:
    def test_any_child_failure_fails_condition(self):
        env = Environment()
        bad = env.event()
        caught = []

        def waiter():
            try:
                yield env.all_of([env.timeout(1.0), bad])
            except RuntimeError:
                caught.append(env.now)

        env.process(waiter())

        def failer():
            yield env.timeout(2.0)
            bad.fail(RuntimeError("child"))

        env.process(failer())
        env.run()
        assert caught == [2.0]

    def test_values_preserve_event_order(self):
        env = Environment()
        results = []

        def waiter():
            values = yield env.all_of(
                [env.timeout(3.0, "a"), env.timeout(1.0, "b"), env.timeout(2.0, "c")]
            )
            results.append(values)

        env.process(waiter())
        env.run()
        assert results == [["a", "b", "c"]]


class TestProcessChains:
    def test_deep_chain_of_completed_events(self):
        """Resuming through many already-processed events must not
        recurse (the kernel loops instead)."""
        env = Environment()
        done = []

        def quick(value):
            return value
            yield  # pragma: no cover

        def chained():
            total = 0
            processes = [env.process(quick(i)) for i in range(300)]
            yield env.timeout(1.0)
            for process in processes:
                total += yield process  # all already finished
            done.append(total)

        env.process(chained())
        env.run()
        assert done == [sum(range(300))]

    def test_two_waiters_on_one_process(self):
        env = Environment()
        results = []

        def worker():
            yield env.timeout(2.0)
            return "payload"

        worker_process = None

        def waiter(label):
            value = yield worker_process
            results.append((label, value))

        worker_process = env.process(worker())
        env.process(waiter("x"))
        env.process(waiter("y"))
        env.run()
        assert sorted(results) == [("x", "payload"), ("y", "payload")]
