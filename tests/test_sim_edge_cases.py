"""Edge-case tests for the simulation kernel's error handling."""

import pytest

from repro.sim.core import Environment, SimulationError


class TestKernelErrors:
    def test_step_on_empty_queue(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_deadlock_detected_by_run_until_complete(self):
        env = Environment()
        gate = env.event()  # never triggered

        def stuck():
            yield gate

        process = env.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run_until_complete(process)

    def test_run_until_complete_propagates_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise KeyError("boom")

        process = env.process(failing())
        with pytest.raises(KeyError):
            env.run_until_complete(process)

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_event_value_before_trigger(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_condition_mixing_environments_rejected(self):
        env_a, env_b = Environment(), Environment()
        event_b = env_b.event()
        with pytest.raises(SimulationError):
            env_a.all_of([env_a.event(), event_b])

    def test_repr_shows_state(self):
        env = Environment()
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "ok" in repr(event)


class TestAnyOfFailure:
    def test_first_failure_propagates(self):
        env = Environment()
        bad = env.event()
        caught = []

        def waiter():
            try:
                yield env.any_of([bad, env.timeout(10.0)])
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter())

        def failer():
            yield env.timeout(1.0)
            bad.fail(ValueError("first"))

        env.process(failer())
        env.run()
        assert caught == ["first"]

    def test_late_failure_after_trigger_is_defused(self):
        env = Environment()
        slow_fail = env.event()
        results = []

        def waiter():
            value = yield env.any_of([env.timeout(1.0, "fast"), slow_fail])
            results.append(value)

        env.process(waiter())

        def failer():
            yield env.timeout(5.0)
            slow_fail.fail(RuntimeError("late"))

        env.process(failer())
        env.run()  # must not raise: the condition defuses the late failure
        assert results == ["fast"]


class TestAllOfFailure:
    def test_any_child_failure_fails_condition(self):
        env = Environment()
        bad = env.event()
        caught = []

        def waiter():
            try:
                yield env.all_of([env.timeout(1.0), bad])
            except RuntimeError:
                caught.append(env.now)

        env.process(waiter())

        def failer():
            yield env.timeout(2.0)
            bad.fail(RuntimeError("child"))

        env.process(failer())
        env.run()
        assert caught == [2.0]

    def test_values_preserve_event_order(self):
        env = Environment()
        results = []

        def waiter():
            values = yield env.all_of(
                [env.timeout(3.0, "a"), env.timeout(1.0, "b"), env.timeout(2.0, "c")]
            )
            results.append(values)

        env.process(waiter())
        env.run()
        assert results == [["a", "b", "c"]]


class TestBatchedDispatch:
    """Pin the batched zero-delay dispatch against golden orderings.

    The kernel drains the current-timestamp run queue (``_nowq``) FIFO
    before consulting the heap; these tests pin the resulting dispatch
    order so any change to the batching condition shows up as a golden
    sequence mismatch, not a silent reordering.
    """

    def test_zero_delay_batch_preserves_creation_order(self):
        env = Environment()
        trace = []

        def proc(label, delay):
            yield env.timeout(delay)
            trace.append((label, env.now))

        for label, delay in enumerate([0.0, 2.0, 0.0, 1.0, 0.0]):
            env.process(proc(label, delay))
        env.run()
        # Zero-delay processes wake in creation order at t=0, then the
        # heap entries in time order.
        assert trace == [(0, 0.0), (2, 0.0), (4, 0.0), (3, 1.0), (1, 2.0)]

    def test_succeed_and_zero_timeout_interleave_in_trigger_order(self):
        env = Environment()
        trace = []

        def waiter(label, event):
            yield event
            trace.append(label)

        gate_a = env.event()
        gate_b = env.event()
        env.process(waiter("a", gate_a))
        env.process(waiter("b", gate_b))

        def driver():
            gate_a.succeed()          # enters the batch first...
            yield env.timeout(0.0)    # ...then the driver's own wakeup...
            gate_b.succeed()          # ...then gate_b, after the drain began
            trace.append("driver")

        env.process(driver())
        env.run()
        assert trace == ["a", "driver", "b"]

    def test_batch_takes_heap_path_when_entry_due_now(self):
        """An event scheduled at ``now`` while a heap entry is also due
        at ``now`` must round-trip through the heap (eid order decides),
        not jump the queue via the batch."""
        env = Environment()
        trace = []

        def sleeper(label, delay):
            yield env.timeout(delay)
            trace.append((label, env.now))

        def late_zero():
            yield env.timeout(1.0)
            # At t=1 a second heap entry (the other sleeper) is due at
            # exactly now: this zero-delay wakeup must not overtake it.
            yield env.timeout(0.0)
            trace.append(("zero", env.now))

        env.process(late_zero())
        env.process(sleeper("one", 1.0))
        env.run()
        assert trace == [("one", 1.0), ("zero", 1.0)]

    def test_step_loop_is_event_for_event_identical_to_run(self):
        def scenario(env, trace):
            def worker(label, delays):
                for delay in delays:
                    yield env.timeout(delay)
                    trace.append((label, env.now))

            gate = env.event()

            def signaller():
                yield env.timeout(1.5)
                gate.succeed("go")

            def gated():
                value = yield gate
                trace.append(("gate", value, env.now))

            env.process(worker("x", [0.0, 1.0, 0.0]))
            env.process(worker("y", [0.5, 0.0, 2.0]))
            env.process(signaller())
            env.process(gated())

        run_trace, step_trace = [], []
        run_env, step_env = Environment(), Environment()
        scenario(run_env, run_trace)
        scenario(step_env, step_trace)
        run_env.run()
        while step_env.peek() != float("inf"):
            step_env.step()
        assert step_trace == run_trace
        assert step_env.events_processed == run_env.events_processed
        assert step_env.now == run_env.now

    def test_recycled_timeout_shells_change_nothing(self):
        """The Timeout free list must be unobservable: a run that holds
        references to every timeout (defeating recycling) produces the
        same trace and consumes the same eid sequence."""

        def scenario(hold):
            env = Environment()
            trace = []

            def worker(label):
                for i in range(6):
                    timeout = env.timeout(0.5 * (i % 3))
                    if hold is not None:
                        hold.append(timeout)
                    yield timeout
                    trace.append((label, env.now))

            env.process(worker("x"))
            env.process(worker("y"))
            env.run()
            return env, trace

        recycled_env, recycled_trace = scenario(None)
        held_env, held_trace = scenario([])
        assert recycled_env._tfree, "free list never engaged"
        assert not held_env._tfree, "held shells must not be recycled"
        assert recycled_trace == held_trace
        assert recycled_env._eid == held_env._eid
        assert recycled_env.events_processed == held_env.events_processed


class TestInterruptEdges:
    def test_interrupt_before_initialize_fires(self):
        """A process interrupted before its Initialize event dispatches
        unwinds immediately; the stale Initialize wakeup is ignored."""
        env = Environment()
        started = []

        def proc():
            started.append(True)
            yield env.timeout(1.0)

        process = env.process(proc())
        process.interrupt(RuntimeError("early"))
        assert not process.is_alive
        process.defuse()  # nobody waits on it; silence the failure
        env.run()  # the queued Initialize must be a no-op
        assert started == []

    def test_anyof_over_already_processed_failed_child(self):
        env = Environment()
        bad = env.event()
        bad.fail(ValueError("pre"))
        bad.defuse()
        env.run()  # dispatch it: the child is processed before AnyOf exists
        caught = []

        def waiter():
            try:
                yield env.any_of([bad, env.timeout(5.0)])
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter())
        env.run()
        assert caught == ["pre"]


class TestProcessChains:
    def test_deep_chain_of_completed_events(self):
        """Resuming through many already-processed events must not
        recurse (the kernel loops instead)."""
        env = Environment()
        done = []

        def quick(value):
            return value
            yield  # pragma: no cover

        def chained():
            total = 0
            processes = [env.process(quick(i)) for i in range(300)]
            yield env.timeout(1.0)
            for process in processes:
                total += yield process  # all already finished
            done.append(total)

        env.process(chained())
        env.run()
        assert done == [sum(range(300))]

    def test_two_waiters_on_one_process(self):
        env = Environment()
        results = []

        def worker():
            yield env.timeout(2.0)
            return "payload"

        worker_process = None

        def waiter(label):
            value = yield worker_process
            results.append((label, value))

        worker_process = env.process(worker())
        env.process(waiter("x"))
        env.process(waiter("y"))
        env.run()
        assert sorted(results) == [("x", "payload"), ("y", "payload")]
