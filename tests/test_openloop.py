"""Open-loop traffic: client pools, admission queues, harness wiring.

Pins the three contracts the open-loop engine rests on:

* **pool equivalence** — an aggregated :class:`ClientPool` generates
  bit-identical transactions to individually-modeled clients served in
  the same arrival order (same shared RNG);
* **admission accounting** — ``offered == admitted + shed`` and
  ``admitted == taken + queued`` at every instant, extended by the
  engine to ``taken == completed + in_flight``;
* **determinism** — open-loop runs fingerprint identically run-to-run
  and across ``--jobs`` fan-out, and their specs pickle losslessly
  (the spawn-safety contract).
"""

import pickle
import random
from array import array

import pytest

from repro.bench.harness import run_benchmark
from repro.bench.parallel import (
    RunSpec,
    WorkloadSpec,
    execute_specs,
    run_fingerprint,
)
from repro.sim.config import ClusterConfig
from repro.sim.core import Environment, SimulationError
from repro.sim.resources import AdmissionQueue
from repro.workloads import SmallBankWorkload, YCSBConfig, YCSBWorkload
from repro.workloads.openloop import (
    LazyClientPool,
    OpenLoopSpec,
    StatelessClientPool,
    goodput_ratio,
    offered_rate_tps,
)
from repro.workloads.smallbank import SmallBankConfig
from repro.workloads.ycsb import YCSBClientPool


def txn_signature(turn):
    txn = turn.txn
    return (
        txn.txn_type,
        txn.client_id,
        tuple(txn.read_set),
        tuple(txn.write_set),
        tuple(getattr(txn, "scan_set", ()) or ()),
        turn.reset_session,
    )


def arrival_order(num_clients, turns, seed):
    """A deterministic interleaved client order with repeats."""
    rng = random.Random(seed)
    return [rng.randrange(num_clients) for _ in range(turns)]


def reference_turns(workload, num_clients, order, seed):
    """The individually-modeled baseline: one state object per client."""
    rng = random.Random(seed)
    states = {}
    turns = []
    now = 0.0
    for client_id in order:
        if client_id not in states:
            states[client_id] = workload.new_client_state(client_id, rng)
        turns.append(workload.next_transaction(states[client_id], rng, now))
        now += 0.5
    return turns


def pool_turns(pool, order, seed):
    rng = random.Random(seed)
    turns = []
    now = 0.0
    for client_id in order:
        turns.append(pool.turn(client_id, rng, now))
        now += 0.5
    return turns


class TestPoolEquivalence:
    def test_ycsb_pool_matches_individual_clients(self):
        # affinity_txns=3 forces several departures (reset_session) so
        # the re-draw path is exercised, not just steady state.
        workload = YCSBWorkload(YCSBConfig(
            num_partitions=40, affinity_txns=3, rmw_fraction=0.6))
        order = arrival_order(12, 400, seed=21)
        expected = reference_turns(workload, 12, order, seed=5)
        actual = pool_turns(workload.client_pool(12), order, seed=5)
        assert list(map(txn_signature, actual)) == list(map(txn_signature, expected))

    def test_smallbank_pool_matches_individual_clients(self):
        workload = SmallBankWorkload(SmallBankConfig(users=200))
        order = arrival_order(10, 300, seed=23)
        expected = reference_turns(workload, 10, order, seed=6)
        actual = pool_turns(workload.client_pool(10), order, seed=6)
        assert list(map(txn_signature, actual)) == list(map(txn_signature, expected))

    def test_lazy_pool_matches_individual_clients(self):
        # The fallback pool IS the individual-client path, lazily.
        workload = YCSBWorkload(YCSBConfig(num_partitions=40, affinity_txns=4))
        order = arrival_order(8, 200, seed=25)
        expected = reference_turns(workload, 8, order, seed=7)
        actual = pool_turns(LazyClientPool(workload, 8), order, seed=7)
        assert list(map(txn_signature, actual)) == list(map(txn_signature, expected))

    def test_ycsb_pool_is_array_backed(self):
        pool = YCSBWorkload(YCSBConfig(num_partitions=10)).client_pool(1000)
        assert isinstance(pool, YCSBClientPool)
        assert isinstance(pool._affinity, array)
        assert isinstance(pool._remaining, array)

    def test_smallbank_pool_is_stateless(self):
        pool = SmallBankWorkload(SmallBankConfig(users=50)).client_pool(1000)
        assert isinstance(pool, StatelessClientPool)

    def test_pool_rejects_empty_population(self):
        workload = SmallBankWorkload(SmallBankConfig(users=50))
        with pytest.raises(ValueError):
            LazyClientPool(workload, 0)


class TestAdmissionQueue:
    def test_conservation_with_backlog(self):
        env = Environment()
        queue = AdmissionQueue(env)
        for item in range(5):
            assert queue.offer(item)
        taken = []

        def drain():
            for _ in range(3):
                taken.append((yield queue.take()))
                yield env.timeout(1.0)

        env.process(drain())
        env.run()
        assert taken == [0, 1, 2]
        assert queue.offered == queue.admitted + queue.shed == 5
        assert queue.admitted == queue.taken + len(queue)
        assert queue.peak_depth == 5

    def test_bounded_queue_sheds(self):
        env = Environment()
        queue = AdmissionQueue(env, capacity=2)
        results = [queue.offer(i) for i in range(5)]
        assert results == [True, True, False, False, False]
        assert queue.shed == 3
        assert queue.offered == queue.admitted + queue.shed == 5

    def test_fast_path_hands_to_waiting_getter(self):
        env = Environment()
        queue = AdmissionQueue(env, capacity=1)
        got = []

        def getter():
            got.append((yield queue.take()))

        env.process(getter())
        env.run()  # getter now parked on an empty queue

        def offer_two():
            # First offer lands on the waiting getter (never queued);
            # second occupies the single backlog slot.
            assert queue.offer("direct")
            assert queue.offer("queued")
            assert not queue.offer("shed")
            yield env.timeout(0.0)

        env.process(offer_two())
        env.run()
        assert got == ["direct"]
        assert queue.taken == 1 and len(queue) == 1
        assert queue.admitted == queue.taken + len(queue)
        assert queue.peak_depth == 1  # the direct handoff never queued

    def test_mean_depth_is_time_weighted(self):
        env = Environment()
        queue = AdmissionQueue(env)

        def script():
            queue.offer("a")  # depth 1 over [0, 10)
            yield env.timeout(10.0)
            queue.offer("b")  # depth 2 over [10, 20)
            yield env.timeout(10.0)
            yield queue.take()
            yield queue.take()  # depth 0 from 20 on

        env.process(script())
        env.run(until=40.0)
        # depth 1 over [0,10), depth 2 over [10,20), 0 after: area 30.
        assert queue.mean_depth(40.0) == pytest.approx(30.0 / 40.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            AdmissionQueue(Environment(), capacity=-1)


class TestOpenLoopSpec:
    def test_of_sorts_curve_params(self):
        spec = OpenLoopSpec.of("diurnal", peak_tps=800.0, base_tps=100.0,
                               period_ms=200.0)
        assert [name for name, _ in spec.curve_params] == [
            "base_tps", "peak_tps", "period_ms"]
        curve = spec.build_curve()
        assert curve.peak() == 800.0

    def test_scaled_multiplies_only_rates(self):
        spec = OpenLoopSpec.of("diurnal", base_tps=100.0, peak_tps=800.0,
                               period_ms=200.0)
        doubled = dict(spec.scaled(2.0).curve_params)
        assert doubled == {"base_tps": 200.0, "peak_tps": 1600.0,
                           "period_ms": 200.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(modeled_clients=0)
        with pytest.raises(ValueError):
            OpenLoopSpec(admission_concurrency=0)
        with pytest.raises(ValueError):
            OpenLoopSpec(queue_capacity=-1)

    def test_pickle_round_trip(self):
        spec = OpenLoopSpec.of("bursty", base_tps=50.0, burst_tps=500.0,
                               period_ms=100.0, burst_ms=20.0,
                               modeled_clients=64, queue_capacity=32)
        assert pickle.loads(pickle.dumps(spec)) == spec


def open_loop_spec(**overrides):
    base = dict(rate_tps=400.0, modeled_clients=64, admission_concurrency=2)
    base.update(overrides)
    return OpenLoopSpec.of("constant", **base)


def tiny_run(system="dynamast", open_loop=None, seed=9, **overrides):
    workload = YCSBWorkload(YCSBConfig(num_partitions=16))
    base = dict(
        duration_ms=200.0,
        warmup_ms=50.0,
        cluster_config=ClusterConfig(num_sites=2, cores_per_site=2),
        seed=seed,
        open_loop=open_loop or open_loop_spec(),
    )
    base.update(overrides)
    return run_benchmark(system, workload, **base)


class TestHarnessIntegration:
    def test_counters_conserve(self):
        result = tiny_run()
        counters = result.metrics.open_loop_counters
        assert counters["offered"] > 0
        assert counters["offered"] == counters["admitted"] + counters["shed"]
        assert counters["admitted"] == counters["taken"] + counters["queued_end"]
        assert counters["taken"] == counters["completed"] + counters["in_flight"]
        assert result.offered_rate == pytest.approx(
            offered_rate_tps(counters, 150.0))
        ratio = goodput_ratio(counters, result.metrics.commits)
        assert ratio is not None and 0.0 < ratio <= 1.0

    def test_bounded_queue_sheds_under_overload(self):
        result = tiny_run(open_loop=open_loop_spec(
            rate_tps=4000.0, admission_concurrency=1, queue_capacity=4))
        counters = result.metrics.open_loop_counters
        assert counters["shed"] > 0
        assert counters["peak_depth"] <= 4
        assert counters["offered"] == counters["admitted"] + counters["shed"]

    def test_admission_wait_summarized(self):
        result = tiny_run()
        wait = result.metrics.admission_wait()
        assert wait.count > 0
        assert wait.p99 >= wait.p50 >= 0.0

    def test_closed_loop_runs_have_no_open_loop_counters(self):
        workload = YCSBWorkload(YCSBConfig(num_partitions=16))
        result = run_benchmark(
            "dynamast", workload, num_clients=4, duration_ms=150.0,
            warmup_ms=30.0,
            cluster_config=ClusterConfig(num_sites=2, cores_per_site=2),
            seed=9)
        assert result.metrics.open_loop_counters == {}
        assert result.offered_rate == 0.0

    def test_run_to_run_fingerprint_stability(self):
        first = run_fingerprint(tiny_run().portable())
        second = run_fingerprint(tiny_run().portable())
        assert first == second

    def test_seed_changes_fingerprint(self):
        assert run_fingerprint(tiny_run(seed=9).portable()) != \
            run_fingerprint(tiny_run(seed=10).portable())

    def test_streaming_metrics_match_exact_fingerprint_inputs(self):
        # Streaming histograms fold admission waits identically enough
        # for the fingerprint's rounded sums to agree with exact mode.
        exact = tiny_run()
        streaming = tiny_run(streaming_metrics=True)
        assert exact.metrics.admission_wait_total() == pytest.approx(
            streaming.metrics.admission_wait_total())
        assert exact.metrics.open_loop_counters == \
            streaming.metrics.open_loop_counters


def open_loop_run_spec(seed=9, **overrides):
    base = dict(
        system="dynamast",
        workload=WorkloadSpec.of("ycsb", num_partitions=16),
        duration_ms=200.0,
        warmup_ms=50.0,
        cluster=ClusterConfig(num_sites=2, cores_per_site=2),
        seed=seed,
        open_loop=open_loop_spec(),
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSpecTransport:
    def test_run_spec_pickle_round_trip(self):
        spec = open_loop_run_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.open_loop == spec.open_loop

    def test_jobs_parity(self):
        specs = [open_loop_run_spec(seed=9), open_loop_run_spec(seed=10)]
        serial = [s.fingerprint for s in execute_specs(specs, jobs=1)]
        fanned = [s.fingerprint for s in execute_specs(specs, jobs=2)]
        assert serial == fanned
        assert len(set(serial)) == 2

    def test_summary_carries_open_loop_counters(self):
        summary = execute_specs([open_loop_run_spec()], jobs=1)[0]
        counters = summary.metrics.open_loop_counters
        assert counters["offered"] > 0
        assert summary.offered_rate > 0
