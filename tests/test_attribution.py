"""Attribution reports: budgets, blame, waterfalls, export, diffing."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.attribution import (
    SCHEMA,
    AttributionError,
    AttributionReport,
    TxnAttribution,
    diff_reports,
    render_waterfall,
    split_by_windows,
    summarize_edges,
    validate_report,
)
from repro.obs.causal import CATEGORIES
from repro.transactions import Outcome, Transaction


def make_txn(kind="rmw"):
    return Transaction(kind, client_id=0, write_set=(("t", 1),))


def synthetic_tracer():
    """Three committed txns with distinct budgets, one abort, one warmup."""
    tracer = Tracer()
    txns = []
    # txn 0: 4 ms, all execute (cpu_service).
    # txn 1: 10 ms, 6 lock wait + 4 execute.
    # txn 2: 20 ms, 15 freshness wait + 5 commit.
    plans = [
        (0.0, 4.0, [("execute", 0.0, 4.0, "site0")]),
        (0.0, 10.0, [("lock_wait", 0.0, 6.0, "site1"),
                     ("execute", 6.0, 10.0, "site1")]),
        (0.0, 20.0, [("freshness_wait", 0.0, 15.0, "site2"),
                     ("commit", 15.0, 20.0, "site2")]),
    ]
    for begin, end, spans in plans:
        txn = make_txn()
        txns.append(txn)
        tracer.txn_begin(txn, begin)
        for name, start, stop, track in spans:
            tracer.span(name, start, stop, track=track, txn=txn)
        tracer.txn_end(txn, Outcome(committed=True), end)
    aborted = make_txn()
    tracer.txn_begin(aborted, 0.0)
    tracer.txn_end(aborted, Outcome(committed=False), 1.0)
    warmup = make_txn()
    tracer.txn_begin(warmup, 0.0)
    tracer.txn_end(warmup, Outcome(committed=True), 1.0, recorded=False)
    # Edges: a lock wait blaming txn 0, a refresh wait on site0's log.
    tracer.edge("lock_wait", 0.0, txn=txns[1], src_txn=txns[0],
                track="site1", key=("t", 1), waiters=1)
    tracer.edge("refresh_wait", 0.0, txn=txns[2], track="site2",
                lagging=((0, 3.0, 5.0),))
    return tracer, txns


class TestReportConstruction:
    def test_only_recorded_commits_attributed(self):
        tracer, _ = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer, meta={"system": "x"})
        assert len(report.txns) == 3
        assert report.meta == {"system": "x"}

    def test_aggregate_and_shares(self):
        tracer, _ = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer)
        aggregate = report.aggregate()
        assert aggregate["cpu_service"] == pytest.approx(13.0)  # 4 + 4 + 5
        assert aggregate["lock_wait"] == pytest.approx(6.0)
        assert aggregate["refresh_wait"] == pytest.approx(15.0)
        assert report.total_latency == pytest.approx(34.0)
        assert sum(report.shares().values()) == pytest.approx(1.0)
        assert report.coverage() == pytest.approx(1.0)

    def test_from_result_requires_observed_run(self):
        class Unobserved:
            obs = None
        with pytest.raises(AttributionError):
            AttributionReport.from_result(Unobserved())

    def test_keep_segments_false_drops_waterfall_detail(self):
        tracer, _ = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer, keep_segments=False)
        assert all(txn.segments == [] for txn in report.txns)
        # Budgets still work from the folded categories.
        assert report.total_latency == pytest.approx(34.0)

    def test_empty_tracer_empty_report(self):
        report = AttributionReport.from_tracer(Tracer())
        assert report.txns == []
        assert report.coverage() == 1.0
        assert report.blame() == []
        assert report.tail_exemplars() == []
        budget = report.budget()
        assert budget["mean"]["latency_ms"] == 0.0


class TestBudgetsAndBlame:
    def test_quantile_budget_orders_by_latency(self):
        tracer, _ = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer)
        p99 = report.quantile_budget(0.99)
        # Window around the worst txn includes all three here, but the
        # p99 latency must be >= the median's.
        assert p99["latency_ms"] >= report.quantile_budget(0.50)["latency_ms"]
        assert set(p99["categories"]) == set(CATEGORIES)

    def test_budget_has_mean_and_pinned_quantiles(self):
        tracer, _ = synthetic_tracer()
        budget = AttributionReport.from_tracer(tracer).budget()
        assert set(budget) == {"mean", "p50", "p95", "p99"}
        for entry in budget.values():
            total = sum(entry["categories"].values())
            assert total == pytest.approx(entry["latency_ms"], abs=1e-9)

    def test_blame_ranks_tail_by_category_track(self):
        tracer, _ = synthetic_tracer()
        blame = AttributionReport.from_tracer(tracer).blame(tail_q=0.9, top=3)
        assert blame
        # The worst txn spends 15 ms in refresh wait at site2.
        assert blame[0]["category"] == "refresh_wait"
        assert blame[0]["track"] == "site2"
        assert blame[0]["ms"] == pytest.approx(15.0)
        shares = [entry["share"] for entry in blame]
        assert shares == sorted(shares, reverse=True)

    def test_tail_exemplars_worst_first(self):
        tracer, _ = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer)
        exemplars = report.tail_exemplars(2)
        assert [round(t.latency) for t in exemplars] == [20, 10]

    def test_find(self):
        tracer, txns = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer)
        assert report.find(txns[0].txn_id).latency == pytest.approx(4.0)
        assert report.find(-1) is None


class TestWaterfall:
    def test_waterfall_lists_segments(self):
        tracer, txns = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer)
        text = render_waterfall(report.find(txns[2].txn_id))
        assert "freshness_wait" in text
        assert "refresh_wait" in text
        assert "site2" in text
        assert "#" in text

    def test_waterfall_without_segments(self):
        txn = TxnAttribution(1, "rmw", 0.0, 2.0, {"other": 2.0})
        assert "(no critical path recorded)" in render_waterfall(txn)


class TestEdgeSummary:
    def test_lock_blame_by_holder_type_and_refresh_origin(self):
        tracer, _ = synthetic_tracer()
        summary = summarize_edges(tracer)
        assert summary["kinds"] == {"lock_wait": 1, "refresh_wait": 1}
        assert summary["lock_blame"] == {"rmw": 1}
        assert summary["refresh_origins"] == {"site0": 1}


class TestSerializationAndDiff:
    def export(self, meta):
        tracer, _ = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer, meta=meta)
        # Roundtrip through JSON like `repro explain --export` does.
        return json.loads(json.dumps(report.to_dict()))

    def matched_meta(self, system):
        return {"system": system, "workload": "ycsb", "seed": 3,
                "clients": 4, "duration_ms": 100.0, "warmup_ms": 0.0}

    def test_to_dict_schema_and_validate(self):
        data = self.export(self.matched_meta("dynamast"))
        assert data["schema"] == SCHEMA
        assert validate_report(data) is data
        assert data["coverage"] == pytest.approx(1.0)
        assert data["txn_count"] == 3
        assert data["exemplars"]

    def test_validate_rejects_non_object(self):
        with pytest.raises(AttributionError, match="JSON object"):
            validate_report([1, 2, 3])

    def test_validate_rejects_wrong_schema(self):
        data = self.export(self.matched_meta("dynamast"))
        data["schema"] = "repro-explain/0"
        with pytest.raises(AttributionError, match="schema"):
            validate_report(data)

    def test_validate_rejects_missing_keys(self):
        data = self.export(self.matched_meta("dynamast"))
        del data["budget"]
        with pytest.raises(AttributionError, match="budget"):
            validate_report(data)

    def test_validate_rejects_malformed_aggregate(self):
        data = self.export(self.matched_meta("dynamast"))
        data["aggregate"] = "nope"
        with pytest.raises(AttributionError, match="aggregate"):
            validate_report(data)

    def test_diff_matched_pair(self):
        a = self.export(self.matched_meta("dynamast"))
        b = self.export(self.matched_meta("single-master"))
        diff = diff_reports(a, b)
        assert diff["a"] == "dynamast"
        assert diff["b"] == "single-master"
        assert [row["category"] for row in diff["rows"]] == list(CATEGORIES)
        for row in diff["rows"]:  # identical synthetic budgets
            assert row["delta_ms"] == pytest.approx(0.0)

    def test_diff_rejects_mismatched_seed(self):
        a = self.export(self.matched_meta("dynamast"))
        meta = self.matched_meta("dynamast")
        meta["seed"] = 9
        b = self.export(meta)
        with pytest.raises(AttributionError, match="seed differs"):
            diff_reports(a, b)

    def test_diff_rejects_malformed_input(self):
        a = self.export(self.matched_meta("dynamast"))
        with pytest.raises(AttributionError):
            diff_reports(a, {"schema": SCHEMA})


class TestSplitByWindows:
    def test_split_assigns_by_begin_time(self):
        tracer = Tracer()
        early, late = make_txn(), make_txn()
        tracer.txn_begin(early, 0.0)
        tracer.span("execute", 0.0, 2.0, track="site0", txn=early)
        tracer.txn_end(early, Outcome(committed=True), 2.0)
        tracer.txn_begin(late, 10.0)
        tracer.span("lock_wait", 10.0, 14.0, track="site0", txn=late)
        tracer.txn_end(late, Outcome(committed=True), 14.0)
        report = AttributionReport.from_tracer(tracer)
        steady, degraded = split_by_windows(report, [(9.0, 20.0)])
        assert steady["cpu_service"] == pytest.approx(1.0)
        assert degraded["lock_wait"] == pytest.approx(1.0)

    def test_split_with_no_windows(self):
        tracer, _ = synthetic_tracer()
        report = AttributionReport.from_tracer(tracer)
        steady, degraded = split_by_windows(report, [])
        assert sum(steady.values()) == pytest.approx(1.0)
        assert all(value == 0.0 for value in degraded.values())
