"""Tests for repeated-run estimation and workload trace replay."""

import pytest

from repro.bench.repeat import Estimate, RepeatedResult, run_repeated, t_critical_95
from repro.sim.config import ClusterConfig
from repro.workloads import YCSBConfig, YCSBWorkload
from repro.workloads.trace import WorkloadTrace, record_trace


class TestEstimate:
    def test_single_sample(self):
        estimate = Estimate.of([5.0])
        assert estimate.mean == 5.0
        assert estimate.half_width == 0.0

    def test_identical_samples_zero_width(self):
        estimate = Estimate.of([3.0, 3.0, 3.0])
        assert estimate.mean == 3.0
        assert estimate.half_width == 0.0

    def test_known_interval(self):
        # Samples 1..5: mean 3, sd sqrt(2.5); t(4 df) = 2.776.
        estimate = Estimate.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert estimate.mean == 3.0
        expected = 2.776 * (2.5 ** 0.5) / (5 ** 0.5)
        assert estimate.half_width == pytest.approx(expected, rel=1e-3)
        assert estimate.low < 3.0 < estimate.high

    def test_overlap(self):
        wide = Estimate(10.0, 5.0, 3)
        near = Estimate(13.0, 1.0, 3)
        far = Estimate(30.0, 2.0, 3)
        assert wide.overlaps(near)
        assert not wide.overlaps(far)

    def test_t_values(self):
        assert t_critical_95(2) == pytest.approx(12.706)
        assert t_critical_95(5) == pytest.approx(2.776)
        assert t_critical_95(1000) == pytest.approx(1.96)
        with pytest.raises(ValueError):
            t_critical_95(1)

    def test_str(self):
        assert "±" in str(Estimate(10.0, 1.0, 5))


class TestRunRepeated:
    def test_collects_across_seeds(self):
        result = run_repeated(
            "dynamast",
            lambda: YCSBWorkload(YCSBConfig(num_partitions=40, affinity_txns=50)),
            seeds=(1, 2, 3),
            num_clients=4,
            duration_ms=200.0,
            warmup_ms=50.0,
            cluster_config=ClusterConfig(num_sites=2),
        )
        assert isinstance(result, RepeatedResult)
        assert result.throughput.samples == 3
        assert result.throughput.mean > 0
        assert len(result.runs) == 3
        # Different seeds produce genuinely different runs.
        throughputs = {run.throughput for run in result.runs}
        assert len(throughputs) > 1


class TestTrace:
    def small_workload(self):
        return YCSBWorkload(
            YCSBConfig(num_partitions=30, affinity_txns=8, rmw_fraction=0.5)
        )

    def test_record_shapes(self):
        trace = record_trace(self.small_workload(), num_clients=3, txns_per_client=20)
        assert trace.num_clients == 3
        assert len(trace.entries_for(0)) == 20
        assert trace.name == "trace(ycsb)"

    def test_recording_is_deterministic(self):
        first = record_trace(self.small_workload(), 2, 15, seed=9)
        second = record_trace(self.small_workload(), 2, 15, seed=9)
        assert first.entries_for(0) == second.entries_for(0)
        assert first.entries_for(1) == second.entries_for(1)

    def test_different_seeds_differ(self):
        first = record_trace(self.small_workload(), 1, 15, seed=1)
        second = record_trace(self.small_workload(), 1, 15, seed=2)
        assert first.entries_for(0) != second.entries_for(0)

    def test_replay_reproduces_sequence(self):
        trace = record_trace(self.small_workload(), 1, 10)
        state = trace.new_client_state(0, rng=None)
        replayed = [
            trace.next_transaction(state, None, float(i)) for i in range(10)
        ]
        for entry, turn in zip(trace.entries_for(0), replayed):
            assert turn.txn.txn_type == entry.txn_type
            assert turn.txn.write_set == entry.write_set
            assert turn.txn.scan_set == entry.scan_set

    def test_replay_wraps_with_session_reset(self):
        trace = record_trace(self.small_workload(), 1, 5)
        state = trace.new_client_state(0, rng=None)
        turns = [trace.next_transaction(state, None, float(i)) for i in range(7)]
        assert turns[5].reset_session  # wrap point
        assert turns[5].txn.write_set == turns[0].txn.write_set

    def test_session_resets_preserved(self):
        trace = record_trace(self.small_workload(), 1, 20)
        resets = [entry.reset_session for entry in trace.entries_for(0)]
        assert resets[8]  # affinity period of 8 in the source workload

    def test_delegates_scheme_and_placement(self):
        source = self.small_workload()
        trace = record_trace(source, 1, 5)
        assert trace.scheme is source.scheme
        assert trace.fixed_placement(2) == source.fixed_placement(2)
        assert trace.recommended_weights() == source.recommended_weights()

    def test_identical_input_across_systems(self):
        """The headline property: two systems consume the same trace."""
        from repro.bench import run_benchmark

        trace = record_trace(self.small_workload(), 4, 50)
        consumed = {}
        for system in ("dynamast", "partition-store"):
            result = run_benchmark(
                system,
                record_trace(self.small_workload(), 4, 50),
                num_clients=4,
                duration_ms=150.0,
                warmup_ms=0.0,
                cluster_config=ClusterConfig(num_sites=2),
            )
            consumed[system] = result.metrics.commits
        # Both systems processed transactions from identical sequences;
        # commit counts differ only because speed differs.
        assert all(count > 0 for count in consumed.values())

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTrace(self.small_workload(), [[]])
