"""Property-based tests over the workload generators."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    SmallBankConfig,
    SmallBankWorkload,
    TPCCConfig,
    TPCCWorkload,
    YCSBConfig,
    YCSBWorkload,
)


class TestYCSBProperties:
    @given(
        st.integers(min_value=3, max_value=200),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25)
    def test_generated_keys_always_in_range(self, partitions, rmw, seed):
        workload = YCSBWorkload(
            YCSBConfig(num_partitions=partitions, rmw_fraction=rmw, affinity_txns=5)
        )
        rng = random.Random(seed)
        state = workload.new_client_state(0, rng)
        total_keys = partitions * workload.config.keys_per_partition
        for step in range(20):
            txn = workload.next_transaction(state, rng, float(step)).txn
            for table, key in txn.all_keys():
                assert table == "usertable"
                assert 0 <= key < total_keys

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20)
    def test_shuffle_is_permutation(self, seed):
        workload = YCSBWorkload(YCSBConfig(num_partitions=64))
        workload.shuffle_correlations(random.Random(seed))
        assert sorted(workload.order) == list(range(64))
        for partition in range(64):
            assert workload.order[workload.position[partition]] == partition

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20)
    def test_partition_mapping_consistent_with_scheme(self, seed):
        workload = YCSBWorkload(YCSBConfig(num_partitions=30, affinity_txns=4))
        rng = random.Random(seed)
        state = workload.new_client_state(0, rng)
        txn = workload.next_transaction(state, rng, 0.0).txn
        for key in txn.all_keys():
            partition = workload.scheme.partition(key)
            assert 0 <= partition < 30


class TestTPCCProperties:
    @given(
        st.integers(min_value=2, max_value=12),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25)
    def test_every_key_maps_to_valid_partition(self, warehouses, remote, seed):
        workload = TPCCWorkload(
            TPCCConfig(
                warehouses=warehouses,
                neworder_remote_fraction=remote,
                payment_remote_fraction=remote,
                items=200,
                customers_per_district=60,
            )
        )
        rng = random.Random(seed)
        state = workload.new_client_state(0, rng)
        for step in range(15):
            txn = workload.next_transaction(state, rng, float(step)).txn
            for key in txn.all_keys():
                partition = workload.scheme.partition(key)
                if key[0] == "item":
                    assert partition is None
                else:
                    assert 0 <= partition < workload.config.num_partitions
                unit = workload.placement_unit_of(key)
                if partition is not None:
                    # The unit is the warehouse base of the partition.
                    per = workload.config.partitions_per_warehouse
                    assert unit == (partition // per) * per

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15)
    def test_writes_never_touch_static_tables(self, seed):
        workload = TPCCWorkload(TPCCConfig(items=100, customers_per_district=30))
        rng = random.Random(seed)
        state = workload.new_client_state(0, rng)
        for step in range(15):
            txn = workload.next_transaction(state, rng, float(step)).txn
            for table, _ in txn.write_set:
                assert table != "item"

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=10)
    def test_fixed_placement_covers_all_partitions(self, sites):
        workload = TPCCWorkload(TPCCConfig(items=100, customers_per_district=30))
        placement = workload.fixed_placement(sites)
        assert set(placement) == set(range(workload.config.num_partitions))
        assert set(placement.values()) <= set(range(sites))


class TestSmallBankProperties:
    @given(
        st.integers(min_value=100, max_value=5000),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25)
    def test_accounts_in_range(self, users, hotspot, seed):
        workload = SmallBankWorkload(
            SmallBankConfig(users=users, hotspot_fraction=hotspot)
        )
        rng = random.Random(seed)
        state = workload.new_client_state(0, rng)
        for step in range(20):
            txn = workload.next_transaction(state, rng, float(step)).txn
            for table, user in txn.all_keys():
                assert table in ("checking", "savings")
                assert 0 <= user < users
            partition_count = workload.config.num_partitions
            for key in txn.all_keys():
                assert 0 <= workload.scheme.partition(key) < partition_count
