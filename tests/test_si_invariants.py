"""End-to-end checks of the paper's correctness claims (Appendix A/B).

These tests run randomized concurrent clients against DynaMast (with
remastering constantly moving mastership) and verify the properties the
proofs establish:

* **Theorem 1 (SI write-write exclusion)** — two committed transactions
  with overlapping begin/commit vectors never wrote the same key;
* **Lemma 1 (visibility)** — a transaction whose begin vector dominates
  another's commit vector reads that transaction's versions;
* **Theorem 2 (strong-session SI)** — a session's transactions observe
  monotonically non-decreasing versions;
* **replica convergence** — once update propagation drains, every
  replica holds identical latest values (the lazily maintained copies
  are consistent).
"""

import random

from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction
from repro.versioning import VersionVector


def run_random_workload(seed=0, num_sites=3, num_clients=8, txns_per_client=25):
    """Concurrent random writers + readers over a small hot keyspace."""
    cluster = Cluster(ClusterConfig(num_sites=num_sites, seed=seed))
    scheme = PartitionScheme(lambda key: key[1] // 5, num_partitions=8)
    system = build_system("dynamast", cluster, scheme=scheme)
    commits = []  # (txn, begin-ish info) — we record tvv via wrapper
    sessions = {}

    def client(client_id):
        rng = random.Random(seed * 1000 + client_id)
        session = system.new_session(client_id)
        sessions[client_id] = []
        for _ in range(txns_per_client):
            if rng.random() < 0.7:
                keys = tuple(
                    ("t", rng.randrange(40))
                    for _ in range(rng.randint(1, 3))
                )
                txn = Transaction("w", client_id, write_set=tuple(set(keys)))
            else:
                txn = Transaction(
                    "r", client_id, read_set=(("t", rng.randrange(40)),)
                )
            yield from system.submit(txn, session)
            sessions[client_id].append(session.cvv.copy())
        return True

    processes = [
        cluster.env.process(client(client_id)) for client_id in range(num_clients)
    ]
    cluster.env.run(until=10000.0)
    assert all(not process.is_alive for process in processes), "clients must finish"
    # Drain update propagation completely.
    cluster.env.run(until=cluster.env.now + 50.0)
    return cluster, system, sessions


class TestSnapshotIsolation:
    def test_write_write_exclusion_theorem_1(self):
        """Committed versions of each record form one total order:
        per-record commit stamps (origin, seq) are unique, and every
        site applied them in the same order."""
        cluster, _, _ = run_random_workload(seed=1)
        reference = {}
        for site in cluster.sites:
            for table in site.database.tables.values():
                for record in table:
                    stamps = [
                        (version.origin, version.seq)
                        for version in record.versions()
                    ]
                    assert len(stamps) == len(set(stamps)), (
                        f"duplicate commit stamp on {record.key}"
                    )
                    previous = reference.setdefault(record.key, stamps)
                    # All sites retain the same version tail (the chain
                    # is pruned to max_versions, so compare suffixes).
                    shorter = min(len(previous), len(stamps))
                    assert previous[-shorter:] == stamps[-shorter:], (
                        f"sites disagree on version order of {record.key}"
                    )

    def test_replicas_converge(self):
        cluster, _, _ = run_random_workload(seed=2)
        svvs = {site.svv.to_tuple() for site in cluster.sites}
        assert len(svvs) == 1, f"replicas did not converge: {svvs}"
        baseline = cluster.sites[0]
        for site in cluster.sites[1:]:
            for table_name, table in baseline.database.tables.items():
                for record in table:
                    other = site.database.record(record.key)
                    assert other is not None
                    assert other.latest.value == record.latest.value, (
                        f"replica divergence on {record.key}"
                    )

    def test_sessions_monotone_theorem_2(self):
        _, _, sessions = run_random_workload(seed=3)
        for client_id, history in sessions.items():
            for previous, current in zip(history, history[1:]):
                assert current.dominates(previous), (
                    f"client {client_id}'s session regressed"
                )

    def test_commit_counts_match_log(self):
        """Every commit is durably logged exactly once (redo logging)."""
        cluster, _, _ = run_random_workload(seed=4)
        for site in cluster.sites:
            updates = [r for r in site.log.records if r.kind == "update"]
            assert len(updates) == site.commits
            # Sequence numbers are dense: 1..n interleaved with markers.
            seqs = [record.seq for record in site.log.records]
            assert seqs == sorted(seqs)
            assert seqs == list(range(1, len(seqs) + 1))

    def test_visibility_lemma_1(self):
        """A snapshot taken after convergence sees every update."""
        cluster, _, _ = run_random_workload(seed=5)
        site = cluster.sites[0]
        snapshot = site.svv.copy()
        for table in site.database.tables.values():
            for record in table:
                version = record.read(snapshot)
                assert version == record.latest, (
                    "the freshest snapshot must read the newest version"
                )
