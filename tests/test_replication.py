"""Tests for the durable log, refresh application, and recovery."""

import pytest

from repro.replication import (
    DurableLog,
    LogRecord,
    recover_database,
    recover_mastership,
)
from repro.replication.log import GRANT, RELEASE, UPDATE
from repro.replication.recovery import merge_logs
from repro.sim.config import ClusterConfig
from repro.sim.core import Environment
from repro.systems.base import Cluster
from repro.transactions import Transaction
from repro.versioning import VersionVector


def make_cluster(num_sites=2, **overrides):
    config = ClusterConfig(num_sites=num_sites, **overrides)
    return Cluster(config)


class TestDurableLog:
    def test_append_requires_matching_origin(self):
        log = DurableLog(Environment(), origin=0)
        with pytest.raises(ValueError):
            log.append(LogRecord(UPDATE, origin=1, tvv=(0, 1)))

    def test_delivery_after_delay(self):
        env = Environment()
        log = DurableLog(env, origin=0, delivery_delay_ms=2.0)
        queue = log.subscribe()
        received = []

        def consumer():
            record = yield queue.get()
            received.append((env.now, record.seq))

        env.process(consumer())
        log.append(LogRecord(UPDATE, origin=0, tvv=(1,)))
        env.run()
        assert received == [(2.0, 1)]

    def test_order_preserved_across_subscribers(self):
        env = Environment()
        log = DurableLog(env, origin=0, delivery_delay_ms=1.0)
        queues = [log.subscribe(), log.subscribe()]
        seen = {0: [], 1: []}

        def consumer(index):
            while True:
                record = yield queues[index].get()
                seen[index].append(record.seq)

        env.process(consumer(0))
        env.process(consumer(1))
        for seq in range(1, 4):
            log.append(LogRecord(UPDATE, origin=0, tvv=(seq,)))
        env.run()
        assert seen[0] == [1, 2, 3]
        assert seen[1] == [1, 2, 3]

    def test_replay_returns_all_records(self):
        env = Environment()
        log = DurableLog(env, origin=0)
        for seq in range(1, 4):
            log.append(LogRecord(UPDATE, origin=0, tvv=(seq,)))
        assert [record.seq for record in log.replay()] == [1, 2, 3]
        assert len(log) == 3


class TestRefreshApplication:
    def test_update_propagates_to_replica(self):
        cluster = make_cluster(num_sites=2)
        site0, site1 = cluster.sites
        site0.mastered.add(0)
        txn = Transaction("w", client_id=0, write_set=(("t", 1),))

        def run():
            yield from site0.execute_update(txn)

        cluster.env.process(run())
        cluster.env.run()
        assert site0.svv.to_tuple() == (1, 0)
        assert site1.svv.to_tuple() == (1, 0)
        # The replica can now read the new version.
        value = site1.database.read(("t", 1), VersionVector([1, 0]))
        assert value == txn.txn_id
        assert site1.replication.applied == 1

    def test_refresh_blocks_on_dependency(self):
        """Figure 2: R(T2) must wait for R(T1) at a lagging replica."""
        # Site 0's log is slow (5 ms) while site 2's log is fast, so
        # site 1 receives R(T2) (which depends on T1) before R(T1).
        config = ClusterConfig(num_sites=3, log_delivery_ms=0.1)
        cluster = Cluster(config)
        site0, site1, site2 = cluster.sites
        site0.log.delivery_delay_ms = 5.0
        site0.mastered.add(0)
        site2.mastered.add(1)
        applied_times = {}

        def writer0():
            txn = Transaction("w", client_id=0, write_set=(("t", 1),))
            yield from site0.execute_update(txn)

        def writer2():
            # T2 begins at site 2 only after site 2 applied R(T1).
            yield site2.watch.wait_for(VersionVector([1, 0, 0]))
            txn = Transaction("w", client_id=1, write_set=(("t", 2),))
            yield from site2.execute_update(txn)

        def monitor():
            yield site1.watch.wait_for(VersionVector([0, 0, 1]))
            applied_times["r_t2"] = cluster.env.now
            assert site1.svv[0] == 1, "R(T2) applied before its dependency R(T1)"

        cluster.env.process(writer0())
        cluster.env.process(writer2())
        cluster.env.process(monitor())
        cluster.env.run()
        assert site1.svv.to_tuple() == (1, 0, 1)
        # R(T2) could not commit at site 1 before R(T1) arrived at 5 ms.
        assert applied_times["r_t2"] >= 5.0

    def test_refreshes_from_independent_sites_interleave(self):
        cluster = make_cluster(num_sites=3)
        site0, site1, site2 = cluster.sites
        site0.mastered.add(0)
        site1.mastered.add(1)

        def writer(site, key):
            txn = Transaction("w", client_id=site.index, write_set=((key, 1),))
            yield from site.execute_update(txn)

        cluster.env.process(writer(site0, "a"))
        cluster.env.process(writer(site1, "b"))
        cluster.env.run()
        assert site2.svv.to_tuple() == (1, 1, 0)


class TestRecovery:
    def build_history(self):
        cluster = make_cluster(num_sites=2)
        site0, site1 = cluster.sites
        site0.mastered.update({0, 1})

        def scenario():
            txn1 = Transaction("w", client_id=0, write_set=(("t", 1), ("t", 2)))
            yield from site0.execute_update(txn1)
            # Remaster partition 1 from site 0 to site 1, then write there.
            release_vv = yield from site0.release_mastership([1])
            yield from site1.grant_mastership([1], release_vv)
            txn2 = Transaction("w", client_id=0, write_set=(("t", 2),))
            yield from site1.execute_update(txn2)
            return txn1, txn2

        process = cluster.env.process(scenario())
        cluster.env.run()
        txn1, txn2 = process.value
        return cluster, txn1, txn2

    def test_merge_logs_orders_consistently(self):
        cluster, _, _ = self.build_history()
        logs = [site.log for site in cluster.sites]
        ordered = merge_logs(logs)
        kinds = [record.kind for record in ordered]
        assert kinds == [UPDATE, RELEASE, GRANT, UPDATE]

    def test_recover_database_matches_live_replica(self):
        cluster, txn1, txn2 = self.build_history()
        logs = [site.log for site in cluster.sites]
        database, svv = recover_database(cluster.env, logs)
        live = cluster.sites[0]
        assert svv.to_tuple() == live.svv.to_tuple()
        snapshot = svv
        assert database.read(("t", 1), snapshot) == txn1.txn_id
        assert database.read(("t", 2), snapshot) == txn2.txn_id

    def test_recover_database_from_checkpoint_vector(self):
        cluster, txn1, txn2 = self.build_history()
        logs = [site.log for site in cluster.sites]
        # Checkpoint that already includes txn1 (seq 1 at site 0).
        checkpoint = VersionVector([1, 0])
        database, svv = recover_database(
            cluster.env,
            logs,
            initial_data=[(("t", 1), txn1.txn_id), (("t", 2), txn1.txn_id)],
            from_vector=checkpoint,
        )
        assert database.read(("t", 2), svv) == txn2.txn_id

    def test_recover_mastership(self):
        cluster, _, _ = self.build_history()
        logs = [site.log for site in cluster.sites]
        mastership = recover_mastership(logs, initial_mastership={0: 0, 1: 0})
        assert mastership == {0: 0, 1: 1}

    def test_merge_logs_detects_inconsistency(self):
        env = Environment()
        log = DurableLog(env, origin=0)
        # Sequence 2 without sequence 1 can never be applied.
        log.append(LogRecord(UPDATE, origin=0, tvv=(2,)))
        with pytest.raises(ValueError):
            merge_logs([log])

    def test_grant_without_target_rejected(self):
        env = Environment()
        log = DurableLog(env, origin=0)
        log.append(LogRecord(GRANT, origin=0, tvv=(1,), partitions=(3,)))
        with pytest.raises(ValueError):
            recover_mastership([log], initial_mastership={})
