"""Micro-scale smoke tests for the experiment drivers.

The real figure regenerations live under ``benchmarks/``; these tests
only verify the drivers' plumbing (argument handling, result shapes) at
a few milliseconds of simulated time.
"""

import pytest

from repro.bench.experiments import run_suite
from repro.workloads import SmallBankWorkload, YCSBConfig, YCSBWorkload
from repro.workloads.smallbank import SmallBankConfig


def tiny_ycsb():
    return YCSBWorkload(YCSBConfig(num_partitions=40, affinity_txns=30))


class TestRunSuite:
    def test_runs_requested_systems(self):
        results = run_suite(
            tiny_ycsb,
            systems=("dynamast", "partition-store"),
            cluster=dict(num_sites=2, cores_per_site=2),
            num_clients=4,
            duration_ms=150.0,
            warmup_ms=30.0,
        )
        assert set(results) == {"dynamast", "partition-store"}
        for result in results.values():
            assert result.metrics.commits > 0

    def test_fresh_workload_per_system(self):
        """Each system must get its own workload instance (generators
        hold mutable state); the factory is called once per system."""
        calls = []

        def factory():
            calls.append(1)
            return tiny_ycsb()

        run_suite(
            factory,
            systems=("dynamast", "single-master"),
            cluster=dict(num_sites=2, cores_per_site=2),
            num_clients=2,
            duration_ms=100.0,
            warmup_ms=0.0,
        )
        assert len(calls) == 2

    def test_seed_passthrough(self):
        def run(seed):
            results = run_suite(
                tiny_ycsb,
                systems=("dynamast",),
                cluster=dict(num_sites=2, cores_per_site=2),
                num_clients=3,
                duration_ms=120.0,
                warmup_ms=0.0,
                seed=seed,
            )
            return results["dynamast"].metrics.commits

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_smallbank_suite_shape(self):
        results = run_suite(
            lambda: SmallBankWorkload(SmallBankConfig(users=500)),
            systems=("dynamast",),
            cluster=dict(num_sites=2, cores_per_site=2),
            num_clients=4,
            duration_ms=150.0,
            warmup_ms=30.0,
        )
        types = set(results["dynamast"].metrics.txn_types())
        assert types <= {"single_update", "two_row_update", "balance"}
        assert types
