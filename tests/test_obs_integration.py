"""End-to-end observability: traced benchmark runs and abort metrics."""

import json

import pytest

from repro.bench import Metrics, run_benchmark
from repro.bench.export import run_to_row
from repro.bench.report import print_run_report
from repro.obs import Observability, reconcile_with_metrics, to_chrome_trace, to_jsonl
from repro.sim.config import ClusterConfig
from repro.transactions import Outcome, Transaction
from repro.workloads import YCSBConfig, YCSBWorkload


def small_workload():
    return YCSBWorkload(
        YCSBConfig(num_partitions=40, rmw_fraction=0.5, affinity_txns=50)
    )


def traced_run(system="dynamast", **kwargs):
    obs = Observability()
    result = run_benchmark(
        system,
        small_workload(),
        num_clients=6,
        duration_ms=200.0,
        warmup_ms=50.0,
        cluster_config=ClusterConfig(num_sites=2),
        seed=7,
        obs=obs,
        **kwargs,
    )
    return result, obs


def canonical_trace(tracer):
    """Trace lines with txn ids remapped to dense per-run ranks.

    Transaction ids come from a process-global counter, so two
    otherwise identical runs disagree on raw ids; rank-by-appearance
    makes traces comparable across runs.
    """
    ranks = {
        txn_id: rank
        for rank, txn_id in enumerate(sorted(tracer.txns))
    }
    lines = []
    for line in to_jsonl(tracer):
        record = json.loads(line)
        if record["txn_id"] is not None:
            record["txn_id"] = ranks[record["txn_id"]]
        lines.append(json.dumps(record, sort_keys=True))
    return lines


class TestTracedRun:
    def test_protocol_span_phases_present(self):
        result, obs = traced_run()
        names = {span.name for span in obs.tracer.spans}
        # The acceptance phases: routing, remaster release/grant, lock
        # and execute work, commit, plus the network hops between them.
        for expected in ("route", "routing", "release", "grant", "lock_wait",
                         "freshness_wait", "begin", "execute", "commit",
                         "network", "refresh_apply"):
            assert expected in names, f"missing span {expected!r}"
        assert any(i.name == "remaster" for i in obs.tracer.instants)
        assert any(i.name == "log_deliver" for i in obs.tracer.instants)

    def test_trace_reconciles_with_metrics_breakdown(self):
        result, obs = traced_run()
        rows = reconcile_with_metrics(obs.tracer, result.metrics)
        assert {row["phase"] for row in rows} == set(result.metrics.phase_totals)
        for row in rows:
            if row["metrics_ms"] > 0:
                assert row["delta"] <= 0.01, row

    def test_timelines_sampled(self):
        result, obs = traced_run()
        assert result.timelines
        for name in ("cpu_utilization.site0", "lock_depth.site1",
                     "replication_queue.site0",
                     "replication_lag.site1.from.site0"):
            assert name in result.timelines
            assert len(result.timelines[name].samples) > 0
        cpu = result.timelines["cpu_utilization.site0"]
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in cpu.values())

    def test_chrome_trace_export_is_valid(self):
        result, obs = traced_run()
        document = json.loads(
            json.dumps(to_chrome_trace(obs.tracer, timelines=result.timelines))
        )
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"M", "X", "i", "C"}

    def test_same_seed_identical_trace(self):
        _, first = traced_run()
        _, second = traced_run()
        assert canonical_trace(first.tracer) == canonical_trace(second.tracer)

    def test_untraced_run_unchanged_by_observed_run(self):
        """An untraced run gives the same numbers whether or not a traced
        run happened before it (no global state leaks)."""
        def plain():
            result = run_benchmark(
                "dynamast",
                small_workload(),
                num_clients=6,
                duration_ms=200.0,
                warmup_ms=50.0,
                cluster_config=ClusterConfig(num_sites=2),
                seed=7,
            )
            return (result.throughput, result.latency().mean,
                    result.metrics.commit_times)
        before = plain()
        traced_run()
        assert plain() == before

    def test_untraced_run_records_nothing(self):
        result = run_benchmark(
            "dynamast",
            small_workload(),
            num_clients=4,
            duration_ms=100.0,
            warmup_ms=25.0,
            cluster_config=ClusterConfig(num_sites=2),
        )
        assert result.obs is None
        assert result.timelines == {}

    def test_two_phase_commit_spans(self):
        result, obs = traced_run(system="multi-master")
        names = {span.name for span in obs.tracer.spans}
        if result.metrics.distributed_txns:
            for expected in ("2pc_execute", "2pc_prepare", "2pc_decide",
                             "branch_execute", "branch_prepare",
                             "branch_commit"):
                assert expected in names, f"missing span {expected!r}"
            assert obs.registry.counter("2pc_started").value > 0

    def test_streaming_metrics_run(self):
        result, _ = traced_run(streaming_metrics=True)
        summary = result.latency()
        assert summary.count == result.metrics.commits
        assert summary.p50 <= summary.p99 <= summary.maximum


class TestAbortAccounting:
    def make_txn(self, kind="w"):
        return Transaction(kind, 0, write_set=(("t", 1),))

    def test_aborts_counted_not_dropped(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(True), 1.0, 1.0)
        metrics.record(self.make_txn(), Outcome(False, retries=2), 1.0, 2.0)
        metrics.record(self.make_txn("r"), Outcome(False), 1.0, 3.0)
        assert metrics.commits == 1
        assert metrics.abort_count == 2
        assert metrics.aborts == {"w": 1, "r": 1}
        assert metrics.abort_rate() == pytest.approx(2 / 3)
        assert metrics.retries == 2
        assert metrics.abort_breakdown() == [("r", 1), ("w", 1)]

    def test_abort_rate_empty(self):
        assert Metrics().abort_rate() == 0.0
        assert Metrics().abort_count == 0

    def test_aborts_do_not_touch_latency_stats(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(False), 99.0, 1.0)
        assert metrics.latency().count == 0
        assert metrics.phase_totals == {}

    def test_run_result_surfaces_aborts(self):
        result, _ = traced_run()
        assert result.abort_rate == result.metrics.abort_rate()
        assert result.aborts_by_type == result.metrics.aborts
        row = run_to_row(result)
        assert "abort_rate" in row and "aborts" in row


class TestMetricsTimelineEdges:
    def make_txn(self):
        return Transaction("w", 0, write_set=(("t", 1),))

    def test_empty_run(self):
        series = Metrics().timeline(10.0, 0.0, 100.0)
        assert series
        assert all(rate == 0.0 for _, rate in series)
        assert series[0][0] == 0.0

    def test_degenerate_windows(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(True), 1.0, 5.0)
        assert metrics.timeline(0.0, 0.0, 100.0) == []
        assert metrics.timeline(-1.0, 0.0, 100.0) == []
        assert metrics.timeline(10.0, 100.0, 100.0) == []
        assert metrics.timeline(10.0, 100.0, 50.0) == []

    def test_boundary_commit_lands_in_next_bucket(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(True), 1.0, 10.0)
        series = metrics.timeline(10.0, 0.0, 20.0)
        assert series[0][1] == 0.0
        assert series[1][1] == pytest.approx(100.0)  # 1 commit / 0.01 s

    def test_commits_outside_window_excluded(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(True), 1.0, 5.0)
        metrics.record(self.make_txn(), Outcome(True), 1.0, 250.0)
        series = metrics.timeline(100.0, 0.0, 200.0)
        assert sum(rate for _, rate in series) == pytest.approx(10.0)


class TestRunReport:
    def test_print_run_report_smoke(self, capsys):
        result, _ = traced_run()
        print_run_report(result)
        output = capsys.readouterr().out
        assert "dynamast on ycsb" in output
        assert "remaster/ship fraction" in output
        assert "abort rate" in output
        assert "sampled timelines" in output
