"""Smoke tests: the fast example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "protocol_walkthrough.py",
    "recovery_demo.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_demonstrates_remastering():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "<- remastered" in result.stdout
    assert "remaster rate" in result.stdout


def test_recovery_demo_verifies():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "recovery_demo.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "recovery OK" in result.stdout
