"""Arrival curves and the thinned Poisson stream (repro.sim.arrivals).

Pins the open-loop determinism contract: the arrival stream is a pure
function of (curve, duration, rng), so the same seed always yields the
same instants — the property the scale harness's exact-fingerprint
check builds on.
"""

import random

import pytest

from repro.sim.arrivals import (
    BurstyCurve,
    ConstantCurve,
    CURVE_REGISTRY,
    DiurnalCurve,
    RampCurve,
    arrival_times,
    build_curve,
    mean_rate,
    scale_curve_params,
)


def stream(curve, duration_ms, seed):
    return list(arrival_times(curve, duration_ms, random.Random(seed)))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        curve = DiurnalCurve(base_tps=500.0, peak_tps=4000.0, period_ms=200.0)
        first = stream(curve, 400.0, seed=7)
        second = stream(curve, 400.0, seed=7)
        assert first == second
        assert len(first) > 50

    def test_different_seed_different_stream(self):
        curve = ConstantCurve(rate_tps=2000.0)
        assert stream(curve, 200.0, seed=1) != stream(curve, 200.0, seed=2)

    def test_instants_sorted_and_bounded(self):
        curve = BurstyCurve(base_tps=200.0, burst_tps=4000.0,
                            period_ms=100.0, burst_ms=25.0)
        times = stream(curve, 300.0, seed=3)
        assert times == sorted(times)
        assert all(0.0 <= t < 300.0 for t in times)

    def test_zero_rate_curve_yields_nothing(self):
        class Silent:
            def rate(self, t_ms):
                return 0.0

            def peak(self):
                return 0.0

        assert stream(Silent(), 1000.0, seed=5) == []


class TestThinning:
    def test_constant_rate_hits_expectation(self):
        # 2000/s over 2s => ~4000 arrivals; Poisson sd ~63.
        times = stream(ConstantCurve(rate_tps=2000.0), 2000.0, seed=11)
        assert 3700 <= len(times) <= 4300

    def test_bursty_concentrates_arrivals_in_bursts(self):
        curve = BurstyCurve(base_tps=200.0, burst_tps=4000.0,
                            period_ms=100.0, burst_ms=25.0)
        times = stream(curve, 1000.0, seed=13)
        inside = sum(1 for t in times if (t % 100.0) < 25.0)
        outside = len(times) - inside
        # Expected 1000 inside vs 150 outside; any sane split passes.
        assert inside > 3 * outside

    def test_diurnal_trough_is_quieter_than_crest(self):
        curve = DiurnalCurve(base_tps=100.0, peak_tps=4000.0,
                             period_ms=400.0, phase=0.0)
        times = stream(curve, 400.0, seed=17)
        # Crest at t=100 (quarter period), trough at t=300.
        crest = sum(1 for t in times if 50.0 <= t < 150.0)
        trough = sum(1 for t in times if 250.0 <= t < 350.0)
        assert crest > 3 * trough


class TestCurves:
    def test_ramp_interpolates_then_holds(self):
        curve = RampCurve(start_tps=100.0, end_tps=1100.0, ramp_ms=1000.0)
        assert curve.rate(0.0) == pytest.approx(100.0)
        assert curve.rate(500.0) == pytest.approx(600.0)
        assert curve.rate(1000.0) == pytest.approx(1100.0)
        assert curve.rate(5000.0) == pytest.approx(1100.0)

    def test_diurnal_cycle_shape(self):
        curve = DiurnalCurve(base_tps=200.0, peak_tps=2200.0, period_ms=400.0)
        assert curve.rate(0.0) == pytest.approx(1200.0)  # mid, rising
        assert curve.rate(100.0) == pytest.approx(2200.0)  # crest
        assert curve.rate(300.0) == pytest.approx(200.0)  # trough
        assert curve.peak() == 2200.0

    def test_mean_rate_constant(self):
        assert mean_rate(ConstantCurve(rate_tps=750.0), 500.0) == pytest.approx(750.0)

    def test_mean_rate_ramp(self):
        curve = RampCurve(start_tps=0.0, end_tps=2000.0, ramp_ms=1000.0)
        assert mean_rate(curve, 1000.0) == pytest.approx(1000.0)

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ConstantCurve(rate_tps=0.0)
        with pytest.raises(ValueError):
            RampCurve(start_tps=0.0, end_tps=0.0)
        with pytest.raises(ValueError):
            DiurnalCurve(base_tps=2000.0, peak_tps=100.0)
        with pytest.raises(ValueError):
            BurstyCurve(period_ms=100.0, burst_ms=200.0)


class TestRegistry:
    def test_registry_builds_every_curve(self):
        assert set(CURVE_REGISTRY) == {"constant", "ramp", "diurnal", "bursty"}
        for name, cls in CURVE_REGISTRY.items():
            assert isinstance(build_curve(name), cls)

    def test_unknown_curve_names_the_known_ones(self):
        with pytest.raises(ValueError, match="constant.*ramp"):
            build_curve("sawtooth")

    def test_bad_params_surface_as_type_error(self):
        with pytest.raises(TypeError):
            build_curve("constant", frequency_hz=3.0)


class TestScaleParams:
    def test_scales_only_tps_keys(self):
        params = (("base_tps", 100.0), ("period_ms", 400.0), ("phase", 0.25))
        scaled = scale_curve_params(params, 2.0)
        assert scaled == (("base_tps", 200.0), ("period_ms", 400.0), ("phase", 0.25))

    def test_multiplier_must_be_positive(self):
        with pytest.raises(ValueError):
            scale_curve_params((("rate_tps", 100.0),), 0.0)
