"""Unit tests for the MVCC storage engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment, SimulationError
from repro.storage import Database, LockTable, Table, VersionedRecord
from repro.versioning import VersionVector


class TestVersionedRecord:
    def test_initial_version_visible_to_zero_snapshot(self):
        record = VersionedRecord(("t", 1), initial_value="init")
        snapshot = VersionVector.zeros(3)
        assert record.read(snapshot).value == "init"

    def test_snapshot_read_sees_only_visible_versions(self):
        record = VersionedRecord(("t", 1), initial_value=0)
        record.install(origin=0, seq=1, value=10, max_versions=4)
        record.install(origin=0, seq=2, value=20, max_versions=4)
        old_snapshot = VersionVector([1, 0])
        new_snapshot = VersionVector([2, 0])
        assert record.read(old_snapshot).value == 10
        assert record.read(new_snapshot).value == 20

    def test_reads_select_newest_visible_across_origins(self):
        record = VersionedRecord(("t", 1), initial_value=0)
        record.install(origin=0, seq=1, value="from-s0", max_versions=4)
        record.install(origin=1, seq=1, value="from-s1", max_versions=4)
        # Snapshot that saw only site 0's update.
        assert record.read(VersionVector([1, 0])).value == "from-s0"
        # Snapshot that saw both; application order makes s1's newest.
        assert record.read(VersionVector([1, 1])).value == "from-s1"

    def test_version_chain_pruned_to_max(self):
        record = VersionedRecord(("t", 1), initial_value=0)
        for seq in range(1, 10):
            record.install(origin=0, seq=seq, value=seq, max_versions=4)
        assert record.version_count == 4
        assert [version.seq for version in record.versions()] == [6, 7, 8, 9]

    def test_pruned_snapshot_falls_back_to_oldest_retained(self):
        record = VersionedRecord(("t", 1), initial_value=0)
        for seq in range(1, 10):
            record.install(origin=0, seq=seq, value=seq, max_versions=4)
        ancient = VersionVector([1, 0])
        assert not record.has_visible(ancient)
        assert record.read(ancient).value == 6

    def test_invalid_commit_sequence_rejected(self):
        record = VersionedRecord(("t", 1))
        with pytest.raises(ValueError):
            record.install(origin=0, seq=0, value=1, max_versions=4)

    def test_latest_ignores_snapshots(self):
        record = VersionedRecord(("t", 1), initial_value=0)
        record.install(origin=1, seq=5, value="new", max_versions=4)
        assert record.latest.value == "new"


#: (origin, value) pairs; the commit sequence is the 1-based install
#: index, matching how a site's commit counter actually advances.
_installs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.integers()),
    max_size=120,
)


class TestInstallPruningProperties:
    """The column-store chain must behave exactly like the naive model:
    append every version, keep the last ``max_versions``.

    Install sequences long enough to push the logical head offset past
    the compaction threshold (``_COMPACT_AT`` = 32) exercise both the
    O(1) head-drop path and the physical compaction rebuild.
    """

    @settings(max_examples=60, deadline=None)
    @given(_installs, st.integers(min_value=1, max_value=6))
    def test_chain_matches_naive_model(self, installs, max_versions):
        record = VersionedRecord(("t", 1), initial_value="init")
        model = [(0, 0, "init")]
        for seq, (origin, value) in enumerate(installs, start=1):
            record.install(origin, seq, value, max_versions=max_versions)
            model.append((origin, seq, value))
            model = model[-max_versions:]
        assert record.version_count == len(model) <= max_versions
        assert [
            (version.origin, version.seq, version.value)
            for version in record.versions()
        ] == model
        assert (record.latest.origin, record.latest.seq, record.latest.value) == model[-1]

    @settings(max_examples=30, deadline=None)
    @given(_installs, st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=130))
    def test_reads_match_naive_model(self, installs, max_versions, horizon):
        """Snapshot reads agree with a scan of the naive model: newest
        visible version, else the oldest retained (pruned-snapshot
        fallback)."""
        record = VersionedRecord(("t", 1), initial_value="init")
        model = [(0, 0, "init")]
        for seq, (origin, value) in enumerate(installs, start=1):
            record.install(origin, seq, value, max_versions=max_versions)
            model.append((origin, seq, value))
            model = model[-max_versions:]
        counts = [horizon, horizon, horizon, horizon]
        expected = next(
            (row for row in reversed(model) if row[1] <= counts[row[0]]),
            model[0],
        )
        assert record.read_value(counts) == expected[2]


class TestTable:
    def test_insert_and_get(self):
        table = Table("accounts")
        table.insert(1, value=100)
        assert table.get(1).latest.value == 100
        assert table.get(2) is None
        assert 1 in table
        assert len(table) == 1

    def test_duplicate_insert_rejected(self):
        table = Table("accounts")
        table.insert(1)
        with pytest.raises(KeyError):
            table.insert(1)

    def test_get_or_insert(self):
        table = Table("accounts")
        record = table.get_or_insert(7, value="v")
        assert table.get_or_insert(7) is record

    def test_version_count(self):
        table = Table("t")
        table.insert(1)
        record = table.insert(2)
        record.install(0, 1, "x", max_versions=4)
        assert table.version_count() == 3


class TestLockTable:
    def test_uncontended_acquire_is_immediate(self):
        env = Environment()
        locks = LockTable(env)
        event = locks.acquire("k")
        assert event.triggered
        assert locks.is_locked("k")
        locks.release("k")
        assert not locks.is_locked("k")

    def test_fifo_contention(self):
        env = Environment()
        locks = LockTable(env)
        order = []

        def worker(label):
            yield locks.acquire("k")
            order.append(label)
            yield env.timeout(1.0)
            locks.release("k")

        for label in "abc":
            env.process(worker(label))
        env.run()
        assert order == ["a", "b", "c"]
        assert locks.contended_acquires == 2
        assert locks.total_acquires == 3

    def test_release_unlocked_rejected(self):
        env = Environment()
        locks = LockTable(env)
        with pytest.raises(SimulationError):
            locks.release("missing")

    def test_acquire_all_sorted_prevents_deadlock(self):
        env = Environment()
        locks = LockTable(env)
        done = []

        def worker(label, keys):
            yield from locks.acquire_all(keys)
            yield env.timeout(1.0)
            locks.release_all(keys)
            done.append(label)

        # Opposite declaration orders would deadlock without sorting.
        env.process(worker("x", ["a", "b"]))
        env.process(worker("y", ["b", "a"]))
        env.run()
        assert sorted(done) == ["x", "y"]

    def test_acquire_all_deduplicates(self):
        env = Environment()
        locks = LockTable(env)

        def worker():
            yield from locks.acquire_all(["a", "a"])
            locks.release_all(["a", "a"])

        process = env.process(worker())
        env.run_until_complete(process)
        assert not locks.is_locked("a")


class TestDatabase:
    def make_db(self):
        return Database(Environment(), max_versions=4)

    def test_load_and_read(self):
        db = self.make_db()
        db.load(("accounts", 1), value=500)
        assert db.read(("accounts", 1), VersionVector.zeros(2)) == 500

    def test_install_many(self):
        db = self.make_db()
        db.install_many([(("t", 1), "a"), (("t", 2), "b")], origin=1, seq=3)
        snapshot = VersionVector([0, 3])
        assert db.read(("t", 1), snapshot) == "a"
        assert db.read(("t", 2), snapshot) == "b"

    def test_read_of_missing_key_creates_empty_record(self):
        db = self.make_db()
        assert db.read(("t", 99), VersionVector.zeros(1)) is None
        assert db.row_count() == 1

    def test_stale_read_counter(self):
        db = self.make_db()
        db.load(("t", 1), 0)
        for seq in range(1, 8):
            db.install(("t", 1), origin=0, seq=seq, value=seq)
        db.read(("t", 1), VersionVector([1]))
        assert db.stale_reads == 1

    def test_invalid_max_versions(self):
        with pytest.raises(ValueError):
            Database(Environment(), max_versions=0)

    def test_row_and_version_counts(self):
        db = self.make_db()
        db.load(("a", 1))
        db.load(("b", 2))
        db.install(("a", 1), origin=0, seq=1, value="x")
        assert db.row_count() == 2
        assert db.version_count() == 3
