"""Unit tests for the remastering strategy (Equations 2-8)."""

import math

import pytest

from repro.core.partitions import PartitionTable
from repro.core.statistics import AccessStatistics, StatisticsConfig
from repro.core.strategy import (
    RemasterStrategy,
    StrategyWeights,
    balance_distance,
)
from repro.sim.core import Environment
from repro.versioning import VersionVector


def make_strategy(placement, weights=None, num_sites=2):
    env = Environment()
    table = PartitionTable(env, placement)
    stats = AccessStatistics(StatisticsConfig())
    strategy = RemasterStrategy(
        weights or StrategyWeights(), stats, table, num_sites
    )
    return strategy, stats, table


def fresh_vvs(num_sites):
    return [VersionVector.zeros(num_sites) for _ in range(num_sites)]


class TestBalanceDistance:
    def test_zero_when_balanced(self):
        assert balance_distance([0.5, 0.5]) == 0.0
        assert balance_distance([0.25] * 4) == 0.0

    def test_grows_with_imbalance(self):
        mild = balance_distance([0.6, 0.4])
        severe = balance_distance([1.0, 0.0])
        assert 0.0 < mild < severe

    def test_empty(self):
        assert balance_distance([]) == 0.0


class TestBalanceFeature:
    def test_remastering_toward_balance_scores_positive(self):
        # All load on site 0; moving partition 1 to site 1 rebalances.
        strategy, stats, _ = make_strategy({0: 0, 1: 0})
        stats.observe(0.0, 1, [0])
        stats.observe(1.0, 1, [1])
        loads = stats.site_write_loads(
            strategy.table.master_of, strategy.num_sites
        )
        toward_balance = strategy._balance_feature([1], 1, loads)
        away_from_balance = strategy._balance_feature([1], 0, loads)
        assert toward_balance > 0.0
        assert away_from_balance == 0.0  # no move, no change

    def test_unbalancing_scores_negative(self):
        strategy, stats, _ = make_strategy({0: 0, 1: 1})
        stats.observe(0.0, 1, [0])
        stats.observe(1.0, 1, [1])
        loads = stats.site_write_loads(
            strategy.table.master_of, strategy.num_sites
        )
        assert strategy._balance_feature([1], 0, loads) < 0.0

    def test_choose_site_balances_load(self):
        # Partitions 0,1 at site 0, partition 2 at site 1; site 0 is
        # overloaded. A transaction writing {1, 2} should resolve the
        # multi-master split by pulling 1 over to the lighter site 1.
        strategy, stats, _ = make_strategy(
            {0: 0, 1: 0, 2: 1}, weights=StrategyWeights(balance=1.0, delay=0.0)
        )
        for time in range(8):
            stats.observe(float(time), 1, [0])
        stats.observe(8.0, 1, [1])
        stats.observe(9.0, 1, [2])
        site, scores = strategy.choose_site([1, 2], fresh_vvs(2))
        assert site == 1
        assert scores[1].benefit > scores[0].benefit


class TestRefreshDelayFeature:
    def test_lagging_candidate_penalized(self):
        strategy, _, _ = make_strategy(
            {0: 0, 1: 1}, weights=StrategyWeights(balance=0.0, delay=1.0)
        )
        # Site 1 lags: it has not applied site 0's 5 updates.
        site_vvs = [VersionVector([5, 0]), VersionVector([0, 0])]
        score_fresh = strategy.score_site(
            0, [0, 1], [0.5, 0.5], [site_vvs[1]], site_vvs[0], None
        )
        score_stale = strategy.score_site(
            1, [0, 1], [0.5, 0.5], [site_vvs[0]], site_vvs[1], None
        )
        assert score_fresh.refresh_delay == 0.0
        assert score_stale.refresh_delay == 5.0
        assert score_fresh.benefit > score_stale.benefit

    def test_session_vector_contributes(self):
        strategy, _, _ = make_strategy({0: 0}, num_sites=2)
        session = VersionVector([3, 0])
        delay = strategy._refresh_delay_feature(
            0, [], VersionVector([1, 0]), session
        )
        assert delay == 2.0


class TestLocalizationFeatures:
    def test_single_sited_colocation(self):
        strategy, _, table = make_strategy({0: 0, 1: 1})
        # Remastering write set {0} to site 1 co-locates 0 with 1.
        assert strategy._single_sited(1, 0, 1, {0}) == 1
        # Remastering {0} to site 0 leaves them split: no change.
        assert strategy._single_sited(0, 0, 1, {0}) == 0

    def test_single_sited_split(self):
        strategy, _, table = make_strategy({0: 0, 1: 0})
        # 0 and 1 are together at site 0; moving only 0 to site 1 splits.
        assert strategy._single_sited(1, 0, 1, {0}) == -1
        # Moving both keeps them together: no change.
        assert strategy._single_sited(1, 0, 1, {0, 1}) == 0

    def test_intra_feature_prefers_colocating_site(self):
        # Partitions 0, 1 frequently co-written; 0 at site 0, 1 at
        # site 1. A transaction writing {0} should be drawn to site 1.
        strategy, stats, _ = make_strategy(
            {0: 0, 1: 1},
            weights=StrategyWeights(balance=0.0, delay=0.0, intra_txn=1.0),
        )
        for time in range(5):
            stats.observe(float(time), 1, [0, 1])
        site, scores = strategy.choose_site([0], fresh_vvs(2))
        assert site == 1
        assert scores[1].intra_txn > 0.0
        assert scores[0].intra_txn == 0.0  # leaves the pair split: no change

    def test_inter_feature_prefers_colocating_site(self):
        strategy, stats, _ = make_strategy(
            {0: 0, 1: 1},
            weights=StrategyWeights(
                balance=0.0, delay=0.0, intra_txn=0.0, inter_txn=1.0
            ),
        )
        # Client writes partition 0 then shortly after partition 1.
        for time in range(5):
            stats.observe(time * 2.0, 7, [0])
            stats.observe(time * 2.0 + 1.0, 7, [1])
        site, scores = strategy.choose_site([0], fresh_vvs(2))
        assert site == 1
        assert scores[1].inter_txn > 0.0


class TestWeights:
    def test_presets(self):
        ycsb = StrategyWeights.for_ycsb()
        assert ycsb.balance > ycsb.intra_txn > ycsb.inter_txn
        tpcc = StrategyWeights.for_tpcc()
        assert tpcc.intra_txn == tpcc.inter_txn == 0.88
        sb = StrategyWeights.for_smallbank()
        # SmallBank dials balance down relative to YCSB (paper App. H).
        assert sb.balance < ycsb.balance
        assert sb.intra_txn == ycsb.intra_txn

    def test_scaled(self):
        weights = StrategyWeights(balance=2.0, delay=1.0).scaled(balance=0.5)
        assert weights.balance == 1.0
        assert weights.delay == 1.0

    def test_scaled_unknown_weight_rejected(self):
        with pytest.raises(ValueError):
            StrategyWeights().scaled(bogus=1.0)

    def test_zero_weights_disable_features(self):
        strategy, stats, _ = make_strategy(
            {0: 0, 1: 1},
            weights=StrategyWeights(
                balance=0.0, delay=0.0, intra_txn=0.0, inter_txn=0.0
            ),
        )
        stats.observe(0.0, 1, [0, 1])
        _, scores = strategy.choose_site([0], fresh_vvs(2))
        assert all(score.benefit == 0.0 for score in scores)
        assert all(score.intra_txn == 0.0 for score in scores)


class TestTieBreaking:
    """The documented deterministic tie contract of ``decide()``."""

    def tied_strategy(self, rng=None, num_sites=3):
        # Fresh statistics and balanced placement: every feature is
        # zero for every candidate, an exact three-way tie.
        env = Environment()
        table = PartitionTable(env, {site: site for site in range(num_sites)})
        stats = AccessStatistics(StatisticsConfig())
        return RemasterStrategy(
            StrategyWeights(), stats, table, num_sites, rng=rng
        )

    def test_exact_tie_without_rng_picks_lowest_site(self):
        strategy = self.tied_strategy(rng=None)
        decision = strategy.decide([1], fresh_vvs(3))
        assert decision.site == 0
        assert decision.tie_break == "lowest-site"
        assert decision.tied == (0, 1, 2)
        assert decision.margin == 0.0

    def test_lowest_site_fallback_is_stable(self):
        strategy = self.tied_strategy(rng=None)
        first = strategy.decide([2], fresh_vvs(3))
        assert all(
            strategy.decide([2], fresh_vvs(3)).site == first.site
            for _ in range(5)
        )

    def test_rng_tie_break_draws_from_tied_set_deterministically(self):
        import random

        picks = []
        for _ in range(2):
            strategy = self.tied_strategy(rng=random.Random(42))
            decision = strategy.decide([1], fresh_vvs(3))
            assert decision.tie_break == "rng"
            assert decision.site in decision.tied
            picks.append(decision.site)
        # Same seed, same draw: the rng rule is a function of the seed.
        assert picks[0] == picks[1]

    def test_clear_win_records_margin_and_no_tie(self):
        strategy, stats, _ = make_strategy(
            {0: 0, 1: 0, 2: 1}, weights=StrategyWeights(balance=1.0, delay=0.0)
        )
        for time in range(8):
            stats.observe(float(time), 1, [0])
        stats.observe(8.0, 1, [1])
        stats.observe(9.0, 1, [2])
        decision = strategy.decide([1, 2], fresh_vvs(2))
        assert decision.tie_break == "clear"
        assert decision.tied == ()
        assert decision.runner_up is not None
        assert decision.runner_up != decision.site
        assert decision.margin > 0.0

    def test_exclude_removes_candidates(self):
        strategy = self.tied_strategy(rng=None)
        decision = strategy.decide([1], fresh_vvs(3), exclude={0})
        assert decision.site == 1  # lowest surviving site
        assert decision.tied == (1, 2)
        with pytest.raises(ValueError, match="no candidate sites"):
            strategy.decide([1], fresh_vvs(3), exclude={0, 1, 2})

    def test_near_tie_within_float_noise_margin_counts_as_tied(self):
        strategy = self.tied_strategy(rng=None)
        scores = {0: 1.0, 1: 1.0 + 1e-13, 2: 0.5}
        original = strategy.score_site

        def doctored(candidate, *args, **kwargs):
            score = original(candidate, *args, **kwargs)
            return type(score)(
                score.site, score.balance, score.refresh_delay,
                score.intra_txn, score.inter_txn, scores[candidate],
            )

        strategy.score_site = doctored
        decision = strategy.decide([1], fresh_vvs(3))
        assert decision.tied == (0, 1)
        assert decision.site == 0  # lowest of the tied pair
        assert decision.tie_break == "lowest-site"

    def test_choose_site_wrapper_matches_decide(self):
        strategy = self.tied_strategy(rng=None)
        site, scores = strategy.choose_site([1], fresh_vvs(3))
        decision = strategy.decide([1], fresh_vvs(3))
        assert site == decision.site
        assert [s.site for s in scores] == [s.site for s in decision.scores]


class TestEquation8:
    def test_benefit_combines_features_linearly(self):
        strategy, stats, _ = make_strategy(
            {0: 0, 1: 1},
            weights=StrategyWeights(
                balance=2.0, delay=0.5, intra_txn=3.0, inter_txn=1.0
            ),
        )
        stats.observe(0.0, 1, [0, 1])
        site_vvs = [VersionVector([4, 0]), VersionVector([0, 0])]
        score = strategy.score_site(
            1, [0], [1.0, 0.0], [site_vvs[0]], site_vvs[1], None
        )
        expected = (
            2.0 * score.balance
            - 0.5 * score.refresh_delay
            + 3.0 * score.intra_txn
            + 1.0 * score.inter_txn
        )
        assert score.benefit == pytest.approx(expected)
