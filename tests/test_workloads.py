"""Tests for the workload generators (paper §VI-A.2, Appendices C/F)."""

import random
from collections import Counter

import pytest

from repro.workloads import (
    SmallBankWorkload,
    TPCCConfig,
    TPCCWorkload,
    YCSBConfig,
    YCSBWorkload,
)
from repro.workloads.smallbank import SmallBankConfig


def drive(workload, txns, rng=None, client_id=0, now_step=1.0):
    """Generate ``txns`` transactions from one client."""
    rng = rng or random.Random(1)
    state = workload.new_client_state(client_id, rng)
    turns = []
    now = 0.0
    for _ in range(txns):
        turns.append(workload.next_transaction(state, rng, now))
        now += now_step
    return turns


class TestYCSB:
    def make(self, **overrides):
        defaults = dict(num_partitions=50, affinity_txns=20)
        defaults.update(overrides)
        return YCSBWorkload(YCSBConfig(**defaults))

    def test_rmw_structure(self):
        workload = self.make(rmw_fraction=1.0)
        for turn in drive(workload, 50):
            txn = turn.txn
            assert txn.txn_type == "rmw"
            assert len(txn.write_set) == 3  # paper: RMW updates three keys
            assert txn.read_set == txn.write_set
            for table, key in txn.write_set:
                assert table == "usertable"
                assert 0 <= key < 50 * 100

    def test_rmw_keys_near_base_partition(self):
        workload = self.make(rmw_fraction=1.0, affinity_spread=0)
        scheme = workload.scheme
        for turn in drive(workload, 100):
            partitions = [scheme.partition(k) for k in turn.txn.write_set]
            base = partitions[0]
            # Bernoulli(5, 0.5) - 3 offsets: within [-3, +2] of the base.
            for partition in partitions[1:]:
                offset = (partition - base) % 50
                assert offset <= 2 or offset >= 47

    def test_scan_length_in_paper_range(self):
        workload = self.make(rmw_fraction=0.0)
        lengths = set()
        for turn in drive(workload, 60):
            txn = turn.txn
            assert txn.txn_type == "scan"
            assert txn.is_read_only
            assert 200 <= len(txn.scan_set) <= 1000  # 2-10 partitions
            lengths.add(len(txn.scan_set))
        assert len(lengths) > 3  # varied lengths

    def test_scan_covers_consecutive_partitions(self):
        workload = self.make(rmw_fraction=0.0)
        scheme = workload.scheme
        turn = drive(workload, 1)[0]
        partitions = sorted({scheme.partition(k) for k in turn.txn.scan_set})
        span = [(p - partitions[0]) % 50 for p in partitions]
        assert span == list(range(len(partitions)))

    def test_mix_fraction(self):
        workload = self.make(rmw_fraction=0.5)
        kinds = Counter(turn.txn.txn_type for turn in drive(workload, 600))
        assert 0.4 < kinds["rmw"] / 600 < 0.6

    def test_affinity_reset_after_period(self):
        workload = self.make(affinity_txns=10)
        turns = drive(workload, 35)
        resets = [index for index, turn in enumerate(turns) if turn.reset_session]
        assert resets == [10, 20, 30]

    def test_shuffle_changes_neighbourhoods(self):
        workload = self.make()
        before = [workload._neighbour(7, off) for off in (-2, -1, 1, 2)]
        workload.shuffle_correlations(random.Random(3))
        after = [workload._neighbour(7, off) for off in (-2, -1, 1, 2)]
        assert before != after
        # position/order stay mutually inverse.
        for partition in range(50):
            assert workload.order[workload.position[partition]] == partition

    def test_zipf_skews_base_partitions(self):
        workload = self.make(zipf_theta=0.99, rmw_fraction=1.0, affinity_txns=1)
        scheme = workload.scheme
        rng = random.Random(5)
        bases = Counter()
        state = workload.new_client_state(0, rng)
        for index in range(2000):
            turn = workload.next_transaction(state, rng, float(index))
            bases[scheme.partition(turn.txn.write_set[0])] += 1
        top_share = sum(count for p, count in bases.items() if p < 10) / 2000
        assert top_share > 0.25  # popular partitions dominate

    def test_initial_records_cover_keyspace(self):
        workload = self.make(num_partitions=3)
        records = list(workload.initial_records())
        assert len(records) == 300
        assert records[0][0] == ("usertable", 0)

    def test_recommended_weights(self):
        assert self.make().recommended_weights().intra_txn == 3.0


class TestTPCC:
    def make(self, **overrides):
        return TPCCWorkload(TPCCConfig(**overrides))

    def test_mix(self):
        workload = self.make()
        kinds = Counter(turn.txn.txn_type for turn in drive(workload, 800))
        assert 0.37 < kinds["new_order"] / 800 < 0.53
        assert 0.37 < kinds["payment"] / 800 < 0.53
        assert 0.04 < kinds["stock_level"] / 800 < 0.17

    def test_neworder_write_set_structure(self):
        workload = self.make(neworder_remote_fraction=0.0)
        cfg = workload.config
        for turn in drive(workload, 60):
            txn = turn.txn
            if txn.txn_type != "new_order":
                continue
            tables = Counter(table for table, _ in txn.write_set)
            assert tables["district"] == 1
            assert tables["orders"] == 1
            assert tables["new_orders"] == 1
            assert cfg.min_order_lines <= tables["stock"] <= cfg.max_order_lines
            assert tables["order_line"] == tables["stock"]
            # All stock from the home warehouse when remote fraction 0.
            home = txn.write_set[0][1][0]
            for table, pk in txn.write_set:
                if table == "stock":
                    assert pk[0] == home

    def test_remote_neworder_touches_other_warehouse(self):
        workload = self.make(neworder_remote_fraction=1.0)
        saw_remote = False
        for turn in drive(workload, 40):
            txn = turn.txn
            if txn.txn_type != "new_order":
                continue
            home = txn.write_set[0][1][0]
            suppliers = {pk[0] for table, pk in txn.write_set if table == "stock"}
            if suppliers - {home}:
                saw_remote = True
        assert saw_remote

    def test_payment_write_set(self):
        workload = self.make(payment_remote_fraction=0.0)
        for turn in drive(workload, 60):
            txn = turn.txn
            if txn.txn_type != "payment":
                continue
            tables = [table for table, _ in txn.write_set]
            assert tables == ["warehouse", "district", "customer", "history"]

    def test_order_ids_monotonic_per_district(self):
        workload = self.make()
        first = workload._order_id(0, 0)
        second = workload._order_id(0, 0)
        other = workload._order_id(0, 1)
        assert second == first + 1
        assert other == 0

    def test_stocklevel_reads_recent_lines(self):
        workload = self.make(stocklevel_weight=1.0, neworder_weight=0.0, payment_weight=0.0)
        rng = random.Random(2)
        state = workload.new_client_state(0, rng)
        # Seed recent lines via a New-Order for this client's warehouse.
        no = workload._make_neworder(state, rng)
        sl = workload._make_stocklevel(state, rng)
        # District row plus order lines and stock entries.
        tables = Counter(table for table, _ in sl.scan_set)
        assert tables["district"] == 1
        if tables.get("order_line"):
            assert tables["stock"] >= 1
        assert sl.is_read_only

    def test_partition_mapping_in_bounds(self):
        workload = self.make()
        scheme = workload.scheme
        cfg = workload.config
        assert scheme.partition(("item", 17)) is None  # static table
        for key in [
            ("warehouse", 9),
            ("district", (9, 9)),
            ("customer", (9, 9, cfg.customers_per_district - 1)),
            ("history", (9, 9, cfg.customers_per_district - 1, 12345)),
            ("stock", (9, cfg.items - 1)),
            ("orders", (9, 9, 99999)),
        ]:
            partition = scheme.partition(key)
            assert 0 <= partition < cfg.num_partitions

    def test_same_warehouse_same_placement_unit(self):
        workload = self.make()
        unit_district = workload.placement_unit_of(("district", (3, 5)))
        unit_stock = workload.placement_unit_of(("stock", (3, 100)))
        unit_other = workload.placement_unit_of(("stock", (4, 100)))
        assert unit_district == unit_stock
        assert unit_district != unit_other
        assert workload.placement_unit_of(("item", 5)) is None

    def test_fixed_placement_keeps_warehouses_whole(self):
        workload = self.make()
        placement = workload.fixed_placement(4)
        cfg = workload.config
        for warehouse in range(cfg.warehouses):
            base = warehouse * cfg.partitions_per_warehouse
            sites = {
                placement[base + offset]
                for offset in range(cfg.partitions_per_warehouse)
            }
            assert len(sites) == 1


class TestSmallBank:
    def make(self, **overrides):
        return SmallBankWorkload(SmallBankConfig(**overrides))

    def test_mix(self):
        workload = self.make()
        kinds = Counter(turn.txn.txn_type for turn in drive(workload, 800))
        assert 0.37 < kinds["single_update"] / 800 < 0.53
        assert 0.32 < kinds["two_row_update"] / 800 < 0.48
        assert 0.09 < kinds["balance"] / 800 < 0.22

    def test_single_update_touches_one_account(self):
        workload = self.make()
        for turn in drive(workload, 100):
            txn = turn.txn
            if txn.txn_type == "single_update":
                assert len(txn.write_set) == 1
                assert txn.write_set[0][0] in ("checking", "savings")

    def test_two_row_update_distinct_users(self):
        workload = self.make()
        for turn in drive(workload, 200):
            txn = turn.txn
            if txn.txn_type == "two_row_update":
                (_, a), (_, b) = txn.write_set
                assert a != b

    def test_balance_reads_both_accounts(self):
        workload = self.make()
        for turn in drive(workload, 200):
            txn = turn.txn
            if txn.txn_type == "balance":
                assert txn.is_read_only
                tables = sorted(table for table, _ in txn.read_set)
                assert tables == ["checking", "savings"]
                assert txn.read_set[0][1] == txn.read_set[1][1]

    def test_counterparty_near_user(self):
        workload = self.make()
        rng = random.Random(9)
        for _ in range(100):
            user = 5000
            other = workload._counterparty(user, rng)
            partition_gap = abs(other // 100 - user // 100)
            assert partition_gap <= 3 or partition_gap >= 97  # wraparound

    def test_hotspot_draws(self):
        workload = self.make(hotspot_fraction=0.5, hotspot_accounts=10)
        rng = random.Random(3)
        draws = [workload._draw_user(rng) for _ in range(1000)]
        hot = sum(1 for d in draws if d < 10)
        assert 0.4 < hot / 1000 < 0.6

    def test_initial_records(self):
        workload = self.make(users=10)
        records = list(workload.initial_records())
        assert len(records) == 20
        assert (("checking", 0), 1000) in records
