"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_workload
from repro.workloads import SmallBankWorkload, TPCCWorkload, YCSBWorkload


class TestMakeWorkload:
    class Args:
        rmw = 0.7
        skew = 0.5
        remote = 0.2

    def test_ycsb(self):
        workload = make_workload("ycsb", self.Args)
        assert isinstance(workload, YCSBWorkload)
        assert workload.config.rmw_fraction == 0.7
        assert workload.config.zipf_theta == 0.5

    def test_tpcc(self):
        workload = make_workload("tpcc", self.Args)
        assert isinstance(workload, TPCCWorkload)
        assert workload.config.neworder_remote_fraction == 0.2

    def test_smallbank(self):
        assert isinstance(make_workload("smallbank", self.Args), SmallBankWorkload)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_workload("bogus", self.Args)


class TestCommands:
    def test_bench_command(self, capsys):
        code = main([
            "bench", "dynamast", "--clients", "4", "--duration", "150",
            "--sites", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "dynamast on ycsb" in output
        assert "remaster/ship fraction" in output

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--systems", "dynamast,partition-store",
            "--clients", "4", "--duration", "150", "--sites", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "dynamast" in output
        assert "partition-store" in output

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "fig4a_ycsb_uniform" in output

    def test_bench_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["bench", "bogus"])

    def test_tpcc_via_cli(self, capsys):
        code = main([
            "bench", "multi-master", "--workload", "tpcc",
            "--clients", "6", "--duration", "200", "--sites", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "new_order" in output


class TestChaosCommand:
    def test_chaos_command(self, capsys, tmp_path):
        out = tmp_path / "timeline.csv"
        code = main([
            "chaos", "--system", "dynamast", "--scenario", "crash-restart",
            "--duration", "900", "--bucket", "300", "--clients", "4",
            "--out", str(out),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos: dynamast under crash-restart" in output
        assert "crash site1" in output
        assert "restart site1" in output
        assert out.read_text().startswith("start_ms,commits_per_s")

    def test_chaos_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--scenario", "bogus"])
