"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_workload
from repro.workloads import SmallBankWorkload, TPCCWorkload, YCSBWorkload


class TestMakeWorkload:
    class Args:
        rmw = 0.7
        skew = 0.5
        remote = 0.2

    def test_ycsb(self):
        workload = make_workload("ycsb", self.Args)
        assert isinstance(workload, YCSBWorkload)
        assert workload.config.rmw_fraction == 0.7
        assert workload.config.zipf_theta == 0.5

    def test_tpcc(self):
        workload = make_workload("tpcc", self.Args)
        assert isinstance(workload, TPCCWorkload)
        assert workload.config.neworder_remote_fraction == 0.2

    def test_smallbank(self):
        assert isinstance(make_workload("smallbank", self.Args), SmallBankWorkload)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_workload("bogus", self.Args)


class TestCommands:
    def test_bench_command(self, capsys):
        code = main([
            "bench", "dynamast", "--clients", "4", "--duration", "150",
            "--sites", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "dynamast on ycsb" in output
        assert "remaster/ship fraction" in output

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--systems", "dynamast,partition-store",
            "--clients", "4", "--duration", "150", "--sites", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "dynamast" in output
        assert "partition-store" in output

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "fig4a_ycsb_uniform" in output

    def test_bench_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["bench", "bogus"])

    def test_tpcc_via_cli(self, capsys):
        code = main([
            "bench", "multi-master", "--workload", "tpcc",
            "--clients", "6", "--duration", "200", "--sites", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "new_order" in output


class TestExplainCommand:
    EXPLAIN = ["explain", "--clients", "4", "--duration", "200", "--sites", "2"]

    def export(self, tmp_path, name, system="dynamast", seed="7"):
        path = tmp_path / name
        code = main(self.EXPLAIN + [
            "--system", system, "--seed", seed, "--export", str(path),
        ])
        assert code == 0
        return path

    def test_explain_prints_budget_and_waterfalls(self, capsys):
        code = main(self.EXPLAIN + ["--system", "dynamast", "--seed", "7"])
        assert code == 0
        output = capsys.readouterr().out
        assert "latency budget: dynamast" in output
        assert "coverage 1.000000" in output
        assert "worst transactions (waterfalls)" in output
        assert "causal edges" in output

    def test_explain_vs_prints_diff(self, capsys):
        code = main(self.EXPLAIN + [
            "--system", "dynamast", "--vs", "single-master", "--seed", "7",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "budget diff: dynamast" in output
        assert "single-master" in output

    def test_export_then_diff_roundtrip(self, capsys, tmp_path):
        a = self.export(tmp_path, "a.json", system="dynamast")
        b = self.export(tmp_path, "b.json", system="single-master")
        capsys.readouterr()
        code = main(["explain", "--diff", str(a), str(b)])
        assert code == 0
        output = capsys.readouterr().out
        assert "budget diff: dynamast" in output

    def test_diff_mismatched_pair_fails_cleanly(self, capsys, tmp_path):
        a = self.export(tmp_path, "a.json", seed="7")
        b = self.export(tmp_path, "b.json", seed="9")
        capsys.readouterr()
        code = main(["explain", "--diff", str(a), str(b)])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro explain: error:" in err
        assert "seed differs" in err
        assert "Traceback" not in err

    def test_diff_malformed_json_fails_cleanly(self, capsys, tmp_path):
        a = self.export(tmp_path, "a.json")
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        capsys.readouterr()
        code = main(["explain", "--diff", str(a), str(broken)])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro explain: error:" in err
        assert "Traceback" not in err

    def test_diff_wrong_schema_fails_cleanly(self, capsys, tmp_path):
        import json

        a = self.export(tmp_path, "a.json")
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"schema": "repro-explain/0"}))
        capsys.readouterr()
        code = main(["explain", "--diff", str(a), str(stale)])
        assert code == 2
        assert "schema" in capsys.readouterr().err

    def test_diff_missing_file_fails_cleanly(self, capsys, tmp_path):
        a = self.export(tmp_path, "a.json")
        capsys.readouterr()
        code = main(["explain", "--diff", str(a), str(tmp_path / "gone.json")])
        assert code == 2
        assert "repro explain: error:" in capsys.readouterr().err

    def test_unknown_txn_fails_cleanly(self, capsys):
        code = main(self.EXPLAIN + ["--system", "dynamast", "--txn", "999999999"])
        assert code == 2
        err = capsys.readouterr().err
        assert "was not attributed" in err


class TestChaosCommand:
    def test_chaos_command(self, capsys, tmp_path):
        out = tmp_path / "timeline.csv"
        code = main([
            "chaos", "--system", "dynamast", "--scenario", "crash-restart",
            "--duration", "900", "--bucket", "300", "--clients", "4",
            "--out", str(out),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos: dynamast under crash-restart" in output
        assert "crash site1" in output
        assert "restart site1" in output
        assert out.read_text().startswith("start_ms,commits_per_s")

    def test_chaos_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--scenario", "bogus"])

    def test_chaos_gray_scenario_with_adaptive_defenses(self, capsys):
        code = main([
            "chaos", "--system", "dynamast", "--scenario", "fail_slow_master",
            "--duration", "2400", "--bucket", "300", "--clients", "4",
            "--defenses", "adaptive", "--masters",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos: dynamast under fail_slow_master" in output
        assert "defenses=adaptive" in output
        assert "hedges launched" in output
        assert "mastering (decision ledger)" in output

    def test_chaos_gray_scenario_with_explain(self, capsys):
        code = main([
            "chaos", "--system", "dynamast", "--scenario", "degraded_wan_link",
            "--duration", "900", "--bucket", "300", "--clients", "4",
            "--explain",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos: dynamast under degraded_wan_link" in output

    def test_chaos_rejects_unknown_defenses(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--defenses", "hopeful"])

    def test_chaos_explain_attributes_the_dip(self, capsys):
        code = main([
            "chaos", "--system", "dynamast", "--scenario", "crash-restart",
            "--duration", "900", "--bucket", "300", "--clients", "4",
            "--explain",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "availability-dip attribution" in output
        assert "steady" in output and "degraded" in output

    def test_chaos_masters_reports_reconvergence(self, capsys):
        code = main([
            "chaos", "--system", "dynamast", "--scenario", "crash-restart",
            "--duration", "900", "--bucket", "300", "--clients", "4",
            "--masters",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "mastering (decision ledger)" in output
        assert "mastering re-convergence after fault transitions" in output
        assert "crash site" in output and "restart site" in output

    def test_chaos_matrix_masters_columns(self, capsys):
        code = main([
            "chaos", "--systems", "dynamast,single-master",
            "--scenarios", "crash", "--duration", "600", "--bucket", "300",
            "--clients", "2", "--jobs", "2", "--masters",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos matrix" in output
        assert "locality" in output and "converged" in output
        assert "detect ms" in output and "quarant ms" in output

    def test_chaos_slo_serial_prints_the_verdict(self, capsys):
        code = main([
            "chaos", "--system", "dynamast", "--scenario", "crash",
            "--duration", "900", "--bucket", "300", "--clients", "4",
            "--slo",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "SLO objectives" in output
        assert "SLO verdict" in output
        assert "detection latency" in output or "quarantine" in output

    def test_chaos_matrix_slo_columns(self, capsys):
        code = main([
            "chaos", "--systems", "dynamast,single-master",
            "--scenarios", "crash", "--duration", "600", "--bucket", "300",
            "--clients", "2", "--jobs", "2", "--slo",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos matrix" in output
        assert "incidents" in output and "MTTD ms" in output


class TestSloCommand:
    def test_slo_run_reports_and_exports(self, capsys, tmp_path):
        html = tmp_path / "dash.html"
        jsonl = tmp_path / "slo.jsonl"
        csv = tmp_path / "slo.csv"
        prom = tmp_path / "slo.prom"
        code = main([
            "slo", "--scenario", "fail_slow_master", "--duration", "2000",
            "--clients", "8", "--quick",
            "--html", str(html), "--export-jsonl", str(jsonl),
            "--export-csv", str(csv), "--prometheus", str(prom),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "repro slo: dynamast under fail_slow_master" in output
        assert "SLO objectives" in output
        assert "fault correlation" in output
        assert html.read_text().startswith("<!DOCTYPE html>")
        assert jsonl.read_text().startswith('{"')
        assert csv.read_text().startswith("kind,objective")
        assert "repro_slo_incidents_total" in prom.read_text()

    def test_slo_unfaulted_scenario_none(self, capsys):
        code = main([
            "slo", "--scenario", "none", "--duration", "1500",
            "--clients", "4", "--quick",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "SLO verdict" in output

    def test_slo_rejects_bad_window(self, capsys):
        code = main(["slo", "--window", "0"])
        assert code == 2
        assert "--window must be positive" in capsys.readouterr().err

    def test_slo_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["slo", "--scenario", "meteor"])


ARGS_MASTERS = [
    "masters", "--system", "dynamast", "--workload", "ycsb",
    "--skew", "0.9", "--clients", "8", "--duration", "400", "--seed", "7",
]


class TestMastersCommand:
    def test_masters_reports_timeline_and_convergence(self, capsys):
        code = main(ARGS_MASTERS + ["--partition", "0"])
        assert code == 0
        output = capsys.readouterr().out
        assert "mastering (decision ledger)" in output
        assert "windowed remaster rate" in output
        assert "convergence:" in output
        assert "partition 0:" in output
        assert "remaster decisions" in output

    def test_masters_why_renders_the_waterfall(self, capsys):
        code = main(ARGS_MASTERS + ["--why", "0"])
        assert code == 0
        output = capsys.readouterr().out
        assert "decision #0" in output
        assert "<- chosen" in output
        assert "weights:" in output

    def test_masters_why_out_of_range_fails_cleanly(self, capsys):
        code = main(ARGS_MASTERS + ["--why", "999999"])
        assert code == 2
        assert "was not recorded" in capsys.readouterr().err

    def test_masters_rejects_bad_window(self, capsys):
        code = main(ARGS_MASTERS + ["--window", "0"])
        assert code == 2
        assert "--window must be positive" in capsys.readouterr().err

    def test_masters_exports(self, capsys, tmp_path):
        from repro.obs.mastery import load_jsonl

        jsonl = tmp_path / "ledger.jsonl"
        csv_path = tmp_path / "rate.csv"
        prom = tmp_path / "masters.prom"
        code = main(ARGS_MASTERS + [
            "--export-jsonl", str(jsonl), "--export-csv", str(csv_path),
            "--prometheus", str(prom),
        ])
        assert code == 0
        loaded = load_jsonl(str(jsonl))
        assert loaded["header"]["schema"] == "repro-masters/1"
        assert loaded["decisions"]
        assert csv_path.read_text().startswith("start_ms,routed,remastered")
        assert "repro_masters_locality_share" in prom.read_text()
