"""Regression guards for subtle behaviours found during calibration."""

import random

from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction
from repro.workloads import YCSBConfig, YCSBWorkload


class TestZipfCaching:
    def test_zipf_generator_reused_for_same_rng(self):
        """Rebuilding the cumulative table per draw was a silent
        performance cliff; the generator must be cached per stream."""
        workload = YCSBWorkload(YCSBConfig(num_partitions=200, zipf_theta=0.75))
        rng = random.Random(1)
        workload._draw_base(rng)
        first = workload._zipf
        workload._draw_base(rng)
        assert workload._zipf is first

    def test_zipf_rebuilt_when_stream_changes(self):
        workload = YCSBWorkload(YCSBConfig(num_partitions=50, zipf_theta=0.75))
        rng_a, rng_b = random.Random(1), random.Random(2)
        workload._draw_base(rng_a)
        first = workload._zipf
        workload._draw_base(rng_b)
        assert workload._zipf is not first


class TestStrategyTieBreaking:
    def test_cold_start_does_not_stampede_to_site_zero(self):
        """With empty statistics every candidate scores 0; without
        randomized tie-breaking all early remasterings picked site 0
        and co-access statistics locked the imbalance in."""
        cluster = Cluster(ClusterConfig(num_sites=4))
        scheme = PartitionScheme(lambda key: key[1], 64)
        system = build_system("dynamast", cluster, scheme=scheme)
        destinations = []

        def client(client_id, pair):
            session = system.new_session(client_id)
            txn = Transaction(
                "w", client_id, write_set=(("t", pair[0]), ("t", pair[1]))
            )
            yield from system.submit(txn, session)
            destinations.append(system.selector.table.master_of(pair[0]))

        # 16 independent cross-site pairs with cold statistics.
        for index in range(16):
            pair = (index * 4, index * 4 + 1)  # sites 0 and 1 round-robin
            cluster.env.process(client(index, pair))
        cluster.env.run()
        assert len(set(destinations)) > 1, (
            "cold-start remasterings must spread across sites"
        )


class TestReleaseMarkerDependencies:
    def test_grant_marker_depends_on_release(self):
        """Log replay must order every remaster chain; the grant marker
        carries a dependency on its release marker (recovery bug guard)."""
        cluster = Cluster(ClusterConfig(num_sites=2))
        site0, site1 = cluster.sites
        site0.mastered.add(3)

        def run():
            release_vv = yield from site0.release_mastership([3])
            yield from site1.grant_mastership([3], release_vv, source=0)

        process = cluster.env.process(run())
        cluster.env.run_until_complete(process)
        release_record = site0.log.records[-1]
        grant_record = site1.log.records[-1]
        assert grant_record.kind == "grant"
        assert grant_record.tvv[0] == release_record.seq, (
            "the grant must declare the release point as a dependency"
        )
        # And the marker is otherwise minimal: no spurious dependencies.
        assert grant_record.tvv[1] == grant_record.seq


class TestRefreshBatching:
    def test_burst_applied_without_per_record_queueing(self):
        """A burst of refresh records is applied under few CPU holds;
        the naive one-queue-wait-per-record model made replicas lag
        exactly when loaded (calibration bug guard)."""
        cluster = Cluster(ClusterConfig(num_sites=2))
        site0, site1 = cluster.sites

        def writer():
            for index in range(30):
                txn = Transaction("w", 0, write_set=(("t", index),))
                yield from site0.execute_update(txn)

        process = cluster.env.process(writer())
        cluster.env.run_until_complete(process)
        drained_at = cluster.env.now + 60.0
        cluster.env.run(until=drained_at)
        assert site1.svv[0] == 30
        # The replica applied everything well before the drain window
        # ended: check it kept pace within ~2x of the writer.
        assert site1.replication.applied == 30


class TestSelectorDowngrade:
    def test_stationary_partitions_routable_during_remaster(self):
        """During a remastering, partitions that are not moving must
        stay routable (selector downgrade; payment-convoy bug guard)."""
        cluster = Cluster(ClusterConfig(num_sites=2))
        scheme = PartitionScheme(lambda key: key[1] // 10, 4)
        system = build_system("dynamast", cluster, scheme=scheme)
        finish = {}

        def remastering_client():
            session = system.new_session(0)
            # Writes partitions 0 (site 0) and 1 (site 1): remasters.
            txn = Transaction(
                "w", 0, write_set=(("t", 5), ("t", 15)), extra_cpu_ms=5.0
            )
            yield from system.submit(txn, session)
            finish["remaster"] = cluster.env.now

        def hot_partition_client():
            yield cluster.env.timeout(0.9)  # mid-remaster
            session = system.new_session(1)
            # Writes only partition 0 — stationary if dest is site 0,
            # moving if dest is site 1; either way the txn completes
            # quickly rather than queueing behind the whole protocol +
            # execution of the first transaction.
            txn = Transaction("w", 1, write_set=(("t", 7),))
            yield from system.submit(txn, session)
            finish["hot"] = cluster.env.now

        cluster.env.process(remastering_client())
        cluster.env.process(hot_partition_client())
        cluster.env.run()
        assert finish["hot"] < finish["remaster"] + 5.0
