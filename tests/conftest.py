"""Shared test configuration: a per-test hang watchdog.

The chaos/property suites drive fault schedules against the protocol
stack, where the characteristic failure mode is non-termination (a
leaked lock or an undelivered 2PC decision wedges the simulation), so
every test runs under a wall-clock timeout. With ``pytest-timeout``
installed, that plugin enforces it; otherwise a SIGALRM fallback
provides the same guarantee on POSIX. Individual tests can override
the budget with ``@pytest.mark.timeout(seconds)``.
"""

from __future__ import annotations

import importlib.util
import signal

import pytest

DEFAULT_TIMEOUT_S = 300

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


def pytest_configure(config):
    if _HAVE_PYTEST_TIMEOUT:
        # Give the plugin a default without requiring ini configuration
        # (which would warn when the plugin is absent).
        if not getattr(config.option, "timeout", None):
            config.option.timeout = DEFAULT_TIMEOUT_S
    else:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock budget "
            "(SIGALRM fallback; pytest-timeout not installed)",
        )


if not _HAVE_PYTEST_TIMEOUT and _HAVE_SIGALRM:

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        seconds = DEFAULT_TIMEOUT_S
        if marker is not None and marker.args:
            seconds = int(marker.args[0])

        def _expired(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded the {seconds}s watchdog "
                "(likely a non-terminating simulation)"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(seconds)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
