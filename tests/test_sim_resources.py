"""Unit tests for simulated resources: Resource, Store, RWLock."""

import pytest

from repro.sim.core import Environment, SimulationError
from repro.sim.resources import Resource, RWLock, Store


class TestResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        finish_times = []

        def worker():
            yield from resource.use(10.0)
            finish_times.append(env.now)

        for _ in range(4):
            env.process(worker())
        env.run()
        # Two run at [0, 10), two queue and run at [10, 20).
        assert finish_times == [10.0, 10.0, 20.0, 20.0]

    def test_fifo_granting(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(label):
            request = resource.request()
            yield request
            order.append(label)
            yield env.timeout(1.0)
            resource.release(request)

        for label in "abc":
            env.process(worker(label))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_wrong_resource_rejected(self):
        env = Environment()
        first = Resource(env, capacity=1)
        second = Resource(env, capacity=1)
        request = first.request()
        with pytest.raises(SimulationError):
            second.release(request)

    def test_cancel_queued_request(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        holder = resource.request()
        queued = resource.request()
        assert not queued.triggered
        resource.release(queued)  # cancel while still queued
        assert resource.queue_length == 0
        resource.release(holder)
        assert resource.in_use == 0

    def test_utilization_accounting(self):
        env = Environment()
        resource = Resource(env, capacity=2)

        def worker():
            yield from resource.use(10.0)

        env.process(worker())
        env.run(until=20.0)
        # One slot busy for 10 of 2*20 slot-ms.
        assert resource.utilization() == pytest.approx(0.25)

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append(item)

        store.put("x")
        env.process(consumer())
        env.run()
        assert received == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append((env.now, item))

        def producer():
            yield env.timeout(5.0)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == [(5.0, "late")]

    def test_fifo_ordering_of_items_and_getters(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(label):
            item = yield store.get()
            received.append((label, item))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1.0)
            store.put(1)
            store.put(2)

        env.process(producer())
        env.run()
        assert received == [("first", 1), ("second", 2)]

    def test_len_counts_buffered_items(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        assert len(store) == 2


class TestRWLock:
    def test_concurrent_readers(self):
        env = Environment()
        lock = RWLock(env)
        active = []

        def reader(label):
            yield lock.acquire_read()
            active.append(label)
            yield env.timeout(5.0)
            lock.release_read()

        env.process(reader("r1"))
        env.process(reader("r2"))
        env.run(until=1.0)
        assert sorted(active) == ["r1", "r2"]

    def test_writer_excludes_readers(self):
        env = Environment()
        lock = RWLock(env)
        trace = []

        def writer():
            yield lock.acquire_write()
            trace.append(("w-in", env.now))
            yield env.timeout(5.0)
            lock.release_write()
            trace.append(("w-out", env.now))

        def reader():
            yield env.timeout(1.0)
            yield lock.acquire_read()
            trace.append(("r-in", env.now))
            lock.release_read()

        env.process(writer())
        env.process(reader())
        env.run()
        assert trace == [("w-in", 0.0), ("w-out", 5.0), ("r-in", 5.0)]

    def test_waiting_writer_blocks_later_readers(self):
        env = Environment()
        lock = RWLock(env)
        trace = []

        def early_reader():
            yield lock.acquire_read()
            yield env.timeout(10.0)
            lock.release_read()

        def writer():
            yield env.timeout(1.0)
            yield lock.acquire_write()
            trace.append(("writer", env.now))
            yield env.timeout(5.0)
            lock.release_write()

        def late_reader():
            yield env.timeout(2.0)
            yield lock.acquire_read()
            trace.append(("late-reader", env.now))
            lock.release_read()

        env.process(early_reader())
        env.process(writer())
        env.process(late_reader())
        env.run()
        # The writer queued before the late reader, so the reader waits
        # for the writer even though the lock was in shared mode.
        assert trace == [("writer", 10.0), ("late-reader", 15.0)]

    def test_release_without_hold_rejected(self):
        env = Environment()
        lock = RWLock(env)
        with pytest.raises(SimulationError):
            lock.release_read()
        with pytest.raises(SimulationError):
            lock.release_write()
