"""FaultPlan validation and the named chaos scenarios."""

import pytest

from repro.faults import (
    FRONTEND,
    GRAY_SCENARIOS,
    SCENARIOS,
    CrashFault,
    FaultPlan,
    LinkFault,
    SlowFault,
    build_scenario,
    degrade_site,
    flapping_site,
    partition_site,
)


class TestPlanValidation:
    def test_empty_plan_is_valid_and_empty(self):
        plan = FaultPlan()
        plan.validate(num_sites=3)
        assert plan.empty

    def test_valid_plan_passes(self):
        plan = FaultPlan(
            crashes=(CrashFault(1, at_ms=100.0, restart_at_ms=500.0),),
            links=(LinkFault(0, 2, 50.0, 250.0, loss=0.3),),
        )
        plan.validate(num_sites=3)
        assert not plan.empty

    def test_crash_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown site"):
            FaultPlan(crashes=(CrashFault(5, at_ms=10.0),)).validate(3)

    def test_sequential_crashes_per_site_allowed(self):
        plan = FaultPlan(crashes=(
            CrashFault(1, at_ms=10.0, restart_at_ms=20.0),
            CrashFault(1, at_ms=40.0),
        ))
        plan.validate(3)

    def test_overlapping_crash_windows_rejected(self):
        plan = FaultPlan(crashes=(
            CrashFault(1, at_ms=10.0, restart_at_ms=30.0),
            CrashFault(1, at_ms=20.0, restart_at_ms=50.0),
        ))
        with pytest.raises(ValueError, match="overlapping crash windows"):
            plan.validate(3)

    def test_crash_after_permanent_crash_rejected(self):
        plan = FaultPlan(crashes=(
            CrashFault(1, at_ms=10.0),
            CrashFault(1, at_ms=30.0),
        ))
        with pytest.raises(ValueError, match="never restarts"):
            plan.validate(3)

    def test_restart_must_follow_crash(self):
        plan = FaultPlan(crashes=(CrashFault(0, at_ms=100.0, restart_at_ms=100.0),))
        with pytest.raises(ValueError, match="not after"):
            plan.validate(3)

    def test_crashing_every_site_rejected(self):
        plan = FaultPlan(crashes=(
            CrashFault(0, at_ms=10.0),
            CrashFault(1, at_ms=20.0),
        ))
        with pytest.raises(ValueError, match="every site"):
            plan.validate(2)

    def test_link_self_loop_rejected(self):
        plan = FaultPlan(links=(LinkFault(1, 1, 0.0, 10.0, drop=True),))
        with pytest.raises(ValueError, match="self-loop"):
            plan.validate(3)

    def test_link_unknown_site_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, 7, 0.0, 10.0, drop=True),))
        with pytest.raises(ValueError, match="unknown site"):
            plan.validate(3)

    def test_total_loss_requires_drop(self):
        plan = FaultPlan(links=(LinkFault(0, 1, 0.0, 10.0, loss=1.0),))
        with pytest.raises(ValueError, match="drop=True"):
            plan.validate(3)

    def test_permanent_partition_rejected(self):
        plan = FaultPlan(links=(
            LinkFault(0, 1, 0.0, float("inf"), drop=True),
        ))
        with pytest.raises(ValueError, match="must end"):
            plan.validate(3)

    def test_empty_interval_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, 1, 10.0, 10.0, drop=True),))
        with pytest.raises(ValueError, match="empty"):
            plan.validate(3)

    def test_negative_extra_delay_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, 1, 0.0, 10.0, extra_delay_ms=-1.0),))
        with pytest.raises(ValueError, match="negative"):
            plan.validate(3)

    def test_negative_jitter_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, 1, 0.0, 10.0, jitter_ms=-2.0),))
        with pytest.raises(ValueError, match="negative"):
            plan.validate(3)

    def test_slow_fault_accepted_and_open_ended(self):
        plan = FaultPlan(slowdowns=(
            SlowFault(1, 100.0, float("inf"), factor=4.0),
        ))
        plan.validate(3)
        assert not plan.empty

    def test_slow_fault_unknown_site_rejected(self):
        plan = FaultPlan(slowdowns=(SlowFault(9, 0.0, 10.0),))
        with pytest.raises(ValueError, match="unknown site"):
            plan.validate(3)

    def test_slow_fault_factor_must_be_positive(self):
        plan = FaultPlan(slowdowns=(SlowFault(1, 0.0, 10.0, factor=0.0),))
        with pytest.raises(ValueError, match="positive"):
            plan.validate(3)

    def test_slow_fault_empty_window_rejected(self):
        plan = FaultPlan(slowdowns=(SlowFault(1, 10.0, 10.0),))
        with pytest.raises(ValueError, match="is empty"):
            plan.validate(3)

    def test_slow_fault_active_window(self):
        slow = SlowFault(0, 100.0, 200.0, factor=5.0)
        assert not slow.active_at(99.9)
        assert slow.active_at(100.0)
        assert slow.active_at(199.9)
        assert not slow.active_at(200.0)


class TestPartitionSugar:
    def test_partition_site_cuts_both_directions(self):
        links = partition_site(1, 100.0, 200.0, num_sites=3)
        pairs = {(link.src, link.dst) for link in links}
        assert pairs == {
            (1, 0), (0, 1), (1, 2), (2, 1), (1, FRONTEND), (FRONTEND, 1),
        }
        assert all(link.drop for link in links)
        assert all(link.start_ms == 100.0 and link.end_ms == 200.0 for link in links)

    def test_partition_site_without_frontend(self):
        links = partition_site(0, 0.0, 10.0, num_sites=2, include_frontend=False)
        assert {(link.src, link.dst) for link in links} == {(0, 1), (1, 0)}

    def test_link_fault_active_window(self):
        link = LinkFault(0, 1, 100.0, 200.0, drop=True)
        assert not link.active_at(99.9)
        assert link.active_at(100.0)
        assert link.active_at(199.9)
        assert not link.active_at(200.0)

    def test_degrade_site_inflates_without_cutting(self):
        links = degrade_site(1, 100.0, 200.0, num_sites=3,
                             extra_delay_ms=4.0, jitter_ms=8.0)
        assert links
        assert all(not link.drop and link.loss == 0.0 for link in links)
        assert all(link.extra_delay_ms == 4.0 for link in links)
        assert all(link.jitter_ms == 8.0 for link in links)
        assert all(1 in (link.src, link.dst) for link in links)

    def test_flapping_site_cycles_cover_window(self):
        links = flapping_site(1, 0.0, 1000.0, num_sites=3,
                              period_ms=250.0, downtime_ms=100.0)
        starts = sorted({link.start_ms for link in links})
        assert starts == [0.0, 250.0, 500.0, 750.0]
        assert all(link.end_ms - link.start_ms == 100.0 for link in links)
        assert all(link.drop for link in links)
        FaultPlan(links=links).validate(3)

    def test_flapping_site_rejects_bad_cadence(self):
        with pytest.raises(ValueError, match="period"):
            flapping_site(1, 0.0, 1000.0, num_sites=3, period_ms=0.0)
        with pytest.raises(ValueError, match="downtime"):
            flapping_site(1, 0.0, 1000.0, num_sites=3,
                          period_ms=100.0, downtime_ms=150.0)


class TestScenarios:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_every_named_scenario_validates(self, name):
        plan = build_scenario(name, num_sites=3, duration_ms=3000.0)
        plan.validate(3)
        assert not plan.empty

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("meteor-strike", num_sites=3, duration_ms=1000.0)

    def test_scenarios_need_two_sites(self):
        with pytest.raises(ValueError, match="two sites"):
            build_scenario("crash", num_sites=1, duration_ms=1000.0)

    def test_gray_scenarios_are_named_scenarios(self):
        assert set(GRAY_SCENARIOS) <= set(SCENARIOS)

    def test_fail_slow_master_slows_without_crashing(self):
        plan = build_scenario("fail_slow_master", num_sites=3,
                              duration_ms=3000.0)
        assert not plan.crashes
        (slow,) = plan.slowdowns
        assert slow.factor > 1.0

    def test_gray_storm_validates_at_two_sites(self):
        plan = build_scenario("gray_storm", num_sites=2, duration_ms=3000.0)
        plan.validate(2)

    def test_crash_restart_outage_is_bounded(self):
        plan = build_scenario("crash-restart", num_sites=3, duration_ms=3000.0)
        (crash,) = plan.crashes
        assert crash.restart_at_ms is not None
        assert crash.at_ms < crash.restart_at_ms <= 3000.0
