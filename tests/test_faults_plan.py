"""FaultPlan validation and the named chaos scenarios."""

import pytest

from repro.faults import (
    FRONTEND,
    SCENARIOS,
    CrashFault,
    FaultPlan,
    LinkFault,
    build_scenario,
    partition_site,
)


class TestPlanValidation:
    def test_empty_plan_is_valid_and_empty(self):
        plan = FaultPlan()
        plan.validate(num_sites=3)
        assert plan.empty

    def test_valid_plan_passes(self):
        plan = FaultPlan(
            crashes=(CrashFault(1, at_ms=100.0, restart_at_ms=500.0),),
            links=(LinkFault(0, 2, 50.0, 250.0, loss=0.3),),
        )
        plan.validate(num_sites=3)
        assert not plan.empty

    def test_crash_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown site"):
            FaultPlan(crashes=(CrashFault(5, at_ms=10.0),)).validate(3)

    def test_duplicate_crash_site_rejected(self):
        plan = FaultPlan(crashes=(
            CrashFault(1, at_ms=10.0, restart_at_ms=20.0),
            CrashFault(1, at_ms=30.0),
        ))
        with pytest.raises(ValueError, match="more than one"):
            plan.validate(3)

    def test_restart_must_follow_crash(self):
        plan = FaultPlan(crashes=(CrashFault(0, at_ms=100.0, restart_at_ms=100.0),))
        with pytest.raises(ValueError, match="not after"):
            plan.validate(3)

    def test_crashing_every_site_rejected(self):
        plan = FaultPlan(crashes=(
            CrashFault(0, at_ms=10.0),
            CrashFault(1, at_ms=20.0),
        ))
        with pytest.raises(ValueError, match="every site"):
            plan.validate(2)

    def test_link_self_loop_rejected(self):
        plan = FaultPlan(links=(LinkFault(1, 1, 0.0, 10.0, drop=True),))
        with pytest.raises(ValueError, match="self-loop"):
            plan.validate(3)

    def test_link_unknown_site_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, 7, 0.0, 10.0, drop=True),))
        with pytest.raises(ValueError, match="unknown site"):
            plan.validate(3)

    def test_total_loss_requires_drop(self):
        plan = FaultPlan(links=(LinkFault(0, 1, 0.0, 10.0, loss=1.0),))
        with pytest.raises(ValueError, match="drop=True"):
            plan.validate(3)

    def test_permanent_partition_rejected(self):
        plan = FaultPlan(links=(
            LinkFault(0, 1, 0.0, float("inf"), drop=True),
        ))
        with pytest.raises(ValueError, match="must end"):
            plan.validate(3)

    def test_empty_interval_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, 1, 10.0, 10.0, drop=True),))
        with pytest.raises(ValueError, match="empty"):
            plan.validate(3)

    def test_negative_extra_delay_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, 1, 0.0, 10.0, extra_delay_ms=-1.0),))
        with pytest.raises(ValueError, match="negative"):
            plan.validate(3)


class TestPartitionSugar:
    def test_partition_site_cuts_both_directions(self):
        links = partition_site(1, 100.0, 200.0, num_sites=3)
        pairs = {(link.src, link.dst) for link in links}
        assert pairs == {
            (1, 0), (0, 1), (1, 2), (2, 1), (1, FRONTEND), (FRONTEND, 1),
        }
        assert all(link.drop for link in links)
        assert all(link.start_ms == 100.0 and link.end_ms == 200.0 for link in links)

    def test_partition_site_without_frontend(self):
        links = partition_site(0, 0.0, 10.0, num_sites=2, include_frontend=False)
        assert {(link.src, link.dst) for link in links} == {(0, 1), (1, 0)}

    def test_link_fault_active_window(self):
        link = LinkFault(0, 1, 100.0, 200.0, drop=True)
        assert not link.active_at(99.9)
        assert link.active_at(100.0)
        assert link.active_at(199.9)
        assert not link.active_at(200.0)


class TestScenarios:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_every_named_scenario_validates(self, name):
        plan = build_scenario(name, num_sites=3, duration_ms=3000.0)
        plan.validate(3)
        assert not plan.empty

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("meteor-strike", num_sites=3, duration_ms=1000.0)

    def test_scenarios_need_two_sites(self):
        with pytest.raises(ValueError, match="two sites"):
            build_scenario("crash", num_sites=1, duration_ms=1000.0)

    def test_crash_restart_outage_is_bounded(self):
        plan = build_scenario("crash-restart", num_sites=3, duration_ms=3000.0)
        (crash,) = plan.crashes
        assert crash.restart_at_ms is not None
        assert crash.at_ms < crash.restart_at_ms <= 3000.0
