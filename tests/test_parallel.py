"""The multi-process experiment engine: executor, specs, transport.

Covers :mod:`repro.bench.parallel` at the unit level — ordering,
failure surfacing, and the pickling contract every spawn-shipped type
must honor. The serial-vs-parallel bit-identity of the experiment
drivers is pinned separately in ``tests/test_parallel_parity.py``.

Spawn safety note: the worker callables below are module-level on
purpose — a lambda or closure would fail to pickle, which is exactly
the rule CONTRIBUTING.md ("Spawn safety") documents.
"""

import pickle

import pytest

from repro.bench.harness import run_benchmark
from repro.bench.parallel import (
    ParallelExecutor,
    RunSpec,
    RunSummary,
    SpecExecutionError,
    WorkloadSpec,
    execute_specs,
    run_fingerprint,
    summarize,
)
from repro.core.strategy import StrategyWeights
from repro.faults.plan import SCENARIOS, FaultPlan, build_scenario
from repro.sim.config import ClusterConfig
from repro.workloads import YCSBConfig, YCSBWorkload, build_workload


def _square(value):
    return value * value


def _explode_on_three(value):
    if value == 3:
        raise RuntimeError("boom at three")
    return value * 10


def tiny_spec(system="dynamast", **overrides):
    base = dict(
        system=system,
        workload=WorkloadSpec.of("ycsb", num_partitions=16),
        num_clients=4,
        duration_ms=150.0,
        warmup_ms=30.0,
        cluster=ClusterConfig(num_sites=2, cores_per_site=2),
        seed=9,
    )
    base.update(overrides)
    return RunSpec(**base)


def run_spec_serially(spec):
    """The reference result: run_benchmark called directly."""
    return run_benchmark(
        spec.system,
        spec.workload.build(),
        num_clients=spec.num_clients,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
        cluster_config=spec.cluster,
        seed=spec.seed,
    )


class TestWorkloadSpec:
    def test_builds_registered_workload(self):
        workload = WorkloadSpec.of("ycsb", num_partitions=16).build()
        assert isinstance(workload, YCSBWorkload)
        assert workload.config.num_partitions == 16

    def test_params_are_canonically_ordered(self):
        a = WorkloadSpec.of("ycsb", zipf_theta=0.5, num_partitions=16)
        b = WorkloadSpec.of("ycsb", num_partitions=16, zipf_theta=0.5)
        assert a == b

    def test_unknown_name_fails_lazily_with_known_names(self):
        spec = WorkloadSpec.of("ycsb2")  # constructing is fine
        with pytest.raises(ValueError, match="ycsb2.*smallbank|smallbank.*ycsb2"):
            spec.build()

    def test_registry_rejects_unknown_param(self):
        with pytest.raises(TypeError):
            build_workload("ycsb", bogus_knob=1)


class TestParallelExecutorSerial:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(0)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            ParallelExecutor(1).map(_square, [1], on_error="ignore")

    def test_serial_maps_in_order(self):
        assert ParallelExecutor(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_serial_failure_collect_keeps_other_slots(self):
        outcomes = ParallelExecutor(1).map(
            _explode_on_three, [1, 3, 5], on_error="collect"
        )
        assert outcomes[0] == 10 and outcomes[2] == 50
        assert isinstance(outcomes[1], SpecExecutionError)
        assert "boom at three" in str(outcomes[1])

    def test_serial_failure_raise_names_the_item(self):
        with pytest.raises(SpecExecutionError, match="boom at three"):
            ParallelExecutor(1).map(_explode_on_three, [3])


class TestParallelExecutorPool:
    def test_pool_preserves_submission_order(self):
        assert ParallelExecutor(2).map(_square, [3, 1, 2, 4]) == [9, 1, 4, 16]

    def test_pool_failure_is_attributed_not_broken_pool(self):
        outcomes = ParallelExecutor(2).map(
            _explode_on_three, [1, 3, 5], on_error="collect"
        )
        assert outcomes[0] == 10 and outcomes[2] == 50
        error = outcomes[1]
        assert isinstance(error, SpecExecutionError)
        assert "BrokenProcessPool" not in str(error)
        assert "boom at three" in str(error)
        # The worker's traceback rides along for debugging.
        assert "RuntimeError" in error.worker_traceback


class TestSpecFailurePaths:
    """A bad spec yields a clean, attributed error — and only for
    its own slot; neighbors in the same pool still succeed."""

    def test_bad_specs_do_not_poison_good_ones(self):
        good = tiny_spec()
        unknown_workload = tiny_spec(
            workload=WorkloadSpec.of("no-such-workload"), label="bad-workload"
        )
        unknown_scenario = tiny_spec(
            fault_scenario="meteor-strike", label="bad-scenario"
        )
        outcomes = execute_specs(
            [good, unknown_workload, unknown_scenario],
            jobs=2,
            on_error="collect",
        )
        assert isinstance(outcomes[0], RunSummary)
        assert outcomes[0].metrics.commits > 0

        for outcome, label in ((outcomes[1], "bad-workload"),
                               (outcomes[2], "bad-scenario")):
            assert isinstance(outcome, SpecExecutionError)
            assert label in str(outcome)  # names the offending spec
            assert "BrokenProcessPool" not in str(outcome)

    def test_raise_mode_still_finishes_the_batch_first(self):
        good = tiny_spec()
        bad = tiny_spec(workload=WorkloadSpec.of("nope"), label="doomed")
        with pytest.raises(SpecExecutionError, match="doomed"):
            execute_specs([bad, good], jobs=1)

    def test_unknown_workload_error_names_known_workloads(self):
        bad = tiny_spec(workload=WorkloadSpec.of("nope"))
        outcomes = execute_specs([bad], jobs=1, on_error="collect")
        assert "ycsb" in str(outcomes[0])


class TestPortableResults:
    def test_portable_summary_pickles_and_round_trips(self):
        result = run_spec_serially(tiny_spec())
        summary = result.portable()
        assert isinstance(summary, RunSummary)
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.metrics.commits == result.metrics.commits
        assert clone.fingerprint == run_fingerprint(result)
        assert clone.throughput == result.throughput
        assert clone.latency().mean == result.latency().mean

    def test_portable_drops_live_handles(self):
        result = run_spec_serially(tiny_spec())
        assert result.system is not None  # the live run keeps its cluster
        summary = result.portable()
        assert summary.system is None
        assert summary.obs is None
        assert summary.injector is None
        assert summary.portable() is summary

    def test_fingerprint_ignores_host_side_measurements(self):
        result = run_spec_serially(tiny_spec())
        before = run_fingerprint(result)
        result.wall_clock_s *= 100.0
        result.events_processed += 12345
        assert run_fingerprint(result) == before

    def test_summary_carries_worker_measurements(self):
        summary = summarize(run_spec_serially(tiny_spec()))
        assert summary.wall_clock_s > 0
        assert summary.events_processed > 0
        assert summary.peak_rss_kb > 0


class TestPickleRoundTrips:
    """Every type a RunSpec or RunSummary transports must pickle."""

    def test_cluster_config(self):
        config = ClusterConfig(num_sites=5, cores_per_site=3)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_strategy_weights(self):
        weights = StrategyWeights.for_ycsb()
        clone = pickle.loads(pickle.dumps(weights))
        assert clone == weights

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_fault_plan_every_named_scenario(self, scenario):
        plan = build_scenario(scenario, num_sites=3, duration_ms=2000.0)
        clone = pickle.loads(pickle.dumps(plan))
        assert isinstance(clone, FaultPlan)
        assert clone.crashes == plan.crashes
        assert clone.links == plan.links
        clone.validate(num_sites=3)

    @pytest.mark.parametrize("streaming", [False, True])
    def test_folded_metrics(self, streaming):
        result = run_spec_serially(tiny_spec())
        if streaming:
            result = run_benchmark(
                "dynamast",
                YCSBWorkload(YCSBConfig(num_partitions=16)),
                num_clients=4,
                duration_ms=150.0,
                warmup_ms=30.0,
                cluster_config=ClusterConfig(num_sites=2, cores_per_site=2),
                seed=9,
                streaming_metrics=True,
            )
        metrics = result.metrics
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.commits == metrics.commits
        assert clone.latency().mean == pytest.approx(metrics.latency().mean)
        assert clone.aborts_by_reason == metrics.aborts_by_reason

    def test_run_spec(self):
        spec = tiny_spec(
            weights=StrategyWeights.for_ycsb(),
            fault_plan=build_scenario("crash", num_sites=2, duration_ms=150.0),
            placement=((0, 0), (1, 1)),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.placement_dict() == {0: 0, 1: 1}
