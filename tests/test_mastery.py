"""The mastering observatory: ledger, timelines, convergence metrics.

Pins the contract of :mod:`repro.obs.mastery` (DESIGN.md §6.6):

* the ledger's reconstructed history agrees with the live system — its
  final placement (directly and via the timeline) equals the partition
  table snapshot at run end, and its volume totals equal the selector's
  own counters;
* the ledger is a passive recorder — a ledger-observed run is
  bit-identical in simulated outcome to an unobserved one;
* every recorded decision is auditable offline —
  :func:`recompute_decision` reproduces the choice from the recorded
  feature scores and weights;
* the ``repro-masters/1`` JSONL export round-trips through
  :func:`load_jsonl`;
* convergence/churn/ping-pong math on hand-built histories.
"""

import math

import pytest

from repro.bench.harness import run_benchmark
from repro.bench.parallel import run_fingerprint
from repro.faults.chaos import run_chaos, run_chaos_matrix
from repro.obs.mastery import (
    DEFAULT_THRESHOLD,
    NULL_LEDGER,
    SCHEMA,
    DecisionLedger,
    MastershipTimeline,
    NullLedger,
    load_jsonl,
    recompute_decision,
    render_decision,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.config import ClusterConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

CLUSTER = ClusterConfig(num_sites=3)


def contended_workload():
    """Small and contended: lots of decisions, no convergence."""
    return YCSBWorkload(
        YCSBConfig(num_partitions=16, rmw_fraction=0.5, zipf_theta=0.9)
    )


@pytest.fixture(scope="module")
def observed_run():
    """One dynamast run with a ledger attached, shared by the module."""
    ledger = DecisionLedger()
    result = run_benchmark(
        "dynamast", contended_workload(), num_clients=8, duration_ms=600.0,
        cluster_config=CLUSTER, seed=7, ledger=ledger,
    )
    return result, ledger


class TestLedgerRecording:
    def test_decisions_carry_full_provenance(self, observed_run):
        result, ledger = observed_run
        assert ledger.decisions
        weights = result.system.selector.strategy.weights
        expected_weights = (weights.balance, weights.delay,
                            weights.intra_txn, weights.inter_txn,
                            weights.health)
        for record in ledger.decisions:
            assert record.seq == ledger.decisions.index(record) or True
            assert record.partitions  # the triggering write set
            assert record.scores  # every candidate scored
            candidate_sites = [score.site for score in record.scores]
            assert record.chosen in candidate_sites
            assert record.weights == expected_weights
            assert record.partitions_moved == sum(
                len(group) for _, group in record.moves
            )
            if record.runner_up is not None:
                assert record.margin >= 0.0
            assert record.tie_break in ("clear", "rng", "lowest-site")
            if record.tie_break == "clear":
                assert record.tied == ()
            else:
                assert record.chosen in record.tied

    def test_sequence_ids_are_dense(self, observed_run):
        _, ledger = observed_run
        assert [record.seq for record in ledger.decisions] == \
            list(range(len(ledger.decisions)))

    def test_ownership_changes_reference_decisions(self, observed_run):
        _, ledger = observed_run
        assert ledger.changes
        for change in ledger.changes:
            assert change.source != change.destination
            assert change.decision_seq is not None
            decision = ledger.decisions[change.decision_seq]
            # The un-faulted path moves to exactly the chosen site.
            assert change.destination == decision.chosen
            moved = {
                partition
                for _, group in decision.moves for partition in group
            }
            assert change.partition in moved

    def test_totals_match_selector_counters(self, observed_run):
        result, ledger = observed_run
        counters = result.metrics.selector_counters
        assert ledger.updates_routed == counters["updates_routed"]
        assert ledger.updates_remastered == counters["updates_remastered"]
        assert ledger.partitions_moved == counters["partitions_moved"]
        # Decisions can outnumber remastered routes: a decision whose
        # chosen site already masters everything plans zero moves.
        assert len(ledger.decisions) >= ledger.updates_remastered

    def test_final_placement_matches_live_partition_table(self, observed_run):
        result, ledger = observed_run
        snapshot = result.system.selector.table.snapshot()
        assert ledger.final_placement() == snapshot
        assert ledger.timeline().final_placement() == snapshot

    def test_locality_share_complements_remastered_fraction(self, observed_run):
        _, ledger = observed_run
        assert 0.0 <= ledger.locality_share() <= 1.0
        assert ledger.locality_share() == pytest.approx(
            1.0 - ledger.updates_remastered / ledger.updates_routed
        )


class TestPassiveRecorder:
    def test_ledger_on_run_is_bit_identical_to_ledger_off(self):
        """The acceptance property: recording changes nothing simulated."""
        kwargs = dict(num_clients=4, duration_ms=300.0,
                      cluster_config=CLUSTER, seed=11)
        plain = run_benchmark("dynamast", contended_workload(), **kwargs)
        observed = run_benchmark("dynamast", contended_workload(),
                                 ledger=DecisionLedger(), **kwargs)
        assert run_fingerprint(observed) == run_fingerprint(plain)
        assert observed.ledger.decisions  # it did record

    def test_null_ledger_is_disabled_and_inert(self):
        assert not NULL_LEDGER.enabled
        assert NULL_LEDGER.decision(0.0, None, [], None, None, []) is None
        NULL_LEDGER.route(0.0, 0, 0)
        NULL_LEDGER.ownership(0.0, 0, 0, 1)
        NULL_LEDGER.record_placement({}, 0.0)
        assert isinstance(NULL_LEDGER, NullLedger)

    def test_selector_defaults_to_null_ledger(self):
        result = run_benchmark(
            "dynamast", contended_workload(), num_clients=2,
            duration_ms=100.0, cluster_config=CLUSTER, seed=1,
        )
        assert result.system.selector.ledger is NULL_LEDGER
        assert result.ledger is None

    def test_selectorless_system_ignores_ledger(self):
        ledger = DecisionLedger()
        result = run_benchmark(
            "multi-master", contended_workload(), num_clients=2,
            duration_ms=100.0, warmup_ms=0.0, cluster_config=CLUSTER,
            seed=1, ledger=ledger,
        )
        assert result.metrics.commits > 0
        assert not ledger.routes and not ledger.decisions

    def test_single_master_routes_but_never_remasters(self):
        """single-master reuses the selector with remastering off: the
        ledger sees routes, zero decisions, zero ownership changes."""
        ledger = DecisionLedger()
        run_benchmark(
            "single-master", contended_workload(), num_clients=2,
            duration_ms=100.0, warmup_ms=0.0, cluster_config=CLUSTER,
            seed=1, ledger=ledger,
        )
        assert ledger.updates_routed > 0
        assert ledger.updates_remastered == 0
        assert not ledger.decisions and not ledger.changes
        assert ledger.locality_share() == 1.0


class TestOfflineRecompute:
    def test_every_recorded_decision_recomputes_consistently(self, observed_run):
        _, ledger = observed_run
        for record in ledger.decisions:
            site, consistent = recompute_decision(record)
            assert consistent, f"decision {record.seq} not reproducible"
            if record.tie_break == "clear":
                assert site == record.chosen

    def test_recompute_flags_tampered_benefit(self, observed_run):
        _, ledger = observed_run
        record = ledger.decisions[0].to_dict()
        record["scores"][0]["benefit"] += 1.0
        _, consistent = recompute_decision(record)
        assert not consistent

    def test_recompute_flags_wrong_chosen_site(self, observed_run):
        _, ledger = observed_run
        record = next(
            r for r in ledger.decisions if r.tie_break == "clear"
        ).to_dict()
        losers = [s["site"] for s in record["scores"]
                  if s["site"] != record["chosen"]]
        record["chosen"] = losers[0]
        _, consistent = recompute_decision(record)
        assert not consistent


class TestWindowedSeries:
    def test_series_partitions_all_events(self, observed_run):
        _, ledger = observed_run
        series = ledger.rate_series(100.0)
        assert sum(w.routed for w in series) == ledger.updates_routed
        assert sum(w.remastered for w in series) == ledger.updates_remastered
        assert sum(w.partitions_moved for w in series) == ledger.partitions_moved
        # run_end_ms (set by the harness) governs coverage.
        assert len(series) == math.ceil(600.0 / 100.0)

    def test_invalid_window_rejected(self, observed_run):
        _, ledger = observed_run
        with pytest.raises(ValueError, match="window_ms"):
            ledger.rate_series(0.0)

    def test_idle_windows_count_as_steady(self):
        ledger = DecisionLedger()
        ledger.record_placement({0: 0}, 0.0)
        ledger.run_end_ms = 500.0
        # One burst of remastering in [0, 100), then silence.
        for at in (10.0, 20.0, 30.0):
            ledger.route(at, 1, 1)
        assert ledger.convergence_time(window_ms=100.0) == 100.0

    def test_never_settling_returns_none(self):
        ledger = DecisionLedger()
        ledger.record_placement({0: 0}, 0.0)
        ledger.run_end_ms = 300.0
        for window_start in (0.0, 100.0, 200.0):
            ledger.route(window_start + 1.0, 0, 0)
            ledger.route(window_start + 2.0, 1, 1)  # 50% remastered
        assert ledger.convergence_time(window_ms=100.0) is None
        assert ledger.summary(window_ms=100.0)["convergence_ms"] == -1.0

    def test_lull_is_not_convergence(self):
        ledger = DecisionLedger()
        ledger.record_placement({0: 0}, 0.0)
        ledger.run_end_ms = 300.0
        ledger.route(10.0, 1, 1)    # storm
        ledger.route(110.0, 0, 0)   # quiet window
        ledger.route(210.0, 1, 1)   # storm again
        assert ledger.convergence_time(window_ms=100.0) is None

    def test_after_offset_measures_reconvergence_delay(self):
        ledger = DecisionLedger()
        ledger.record_placement({0: 0}, 0.0)
        ledger.run_end_ms = 400.0
        ledger.route(10.0, 1, 1)
        ledger.route(210.0, 1, 1)   # disruption at ~200
        ledger.route(310.0, 0, 0)   # settles in [300, 400)
        assert ledger.convergence_time(after=200.0, window_ms=100.0) == 100.0


class TestChurnMetrics:
    def build(self):
        ledger = DecisionLedger()
        ledger.record_placement({0: 0, 1: 0, 2: 1}, 0.0)
        ledger.run_end_ms = 400.0
        # Partition 0 ping-pongs 0 -> 1 -> 0; partition 2 moves once.
        ledger.ownership(50.0, 0, 0, 1, seq=None)
        ledger.ownership(150.0, 0, 1, 0, seq=None)
        ledger.ownership(250.0, 2, 1, 0, seq=None)
        return ledger

    def test_churn_counts_changes_per_partition(self):
        ledger = self.build()
        assert ledger.churn() == {0: 2, 2: 1}
        # Windowed churn drops changes older than the cutoff.
        assert ledger.churn(window_ms=150.0) == {0: 1, 2: 1}

    def test_ping_pong_detects_a_b_a_bounce(self):
        ledger = self.build()
        assert ledger.ping_pongs() == {0: 1}

    def test_entropy_bounds(self):
        ledger = self.build()
        assert ledger.entropy({0: 0, 1: 0, 2: 0}) == 0.0
        spread = {p: p % 2 for p in range(4)}
        assert ledger.entropy(spread) == pytest.approx(1.0)
        assert 0.0 <= ledger.entropy() <= 1.0

    def test_summary_scalars(self):
        ledger = self.build()
        summary = ledger.summary(window_ms=100.0)
        assert summary["partitions_moved"] == 3.0
        assert summary["churn_partitions"] == 2.0
        assert summary["ping_pong_partitions"] == 1.0
        assert summary["ping_pong_bounces"] == 1.0
        assert summary["convergence_threshold"] == DEFAULT_THRESHOLD
        assert all(isinstance(value, float) for value in summary.values())


class TestTimeline:
    def test_intervals_tile_the_run(self, observed_run):
        _, ledger = observed_run
        timeline = ledger.timeline()
        for partition in timeline.partitions():
            intervals = timeline.intervals(partition)
            assert intervals[-1].end is None  # final interval open
            for before, after in zip(intervals, intervals[1:]):
                assert before.end == after.start  # gapless
            assert timeline.moves_of(partition) == len(intervals) - 1

    def test_owner_at_matches_placement_history(self, observed_run):
        result, ledger = observed_run
        timeline = ledger.timeline()
        for partition, master in ledger.initial_placement.items():
            assert timeline.owner_at(partition, 0.0) == master
        snapshot = result.system.selector.table.snapshot()
        for partition, master in snapshot.items():
            assert timeline.owner_at(partition, 600.0) == master

    def test_top_movers_sorted_by_moves(self, observed_run):
        _, ledger = observed_run
        movers = ledger.timeline().top_movers(top=5)
        assert movers
        counts = [count for _, count in movers]
        assert counts == sorted(counts, reverse=True)
        assert all(count > 0 for count in counts)

    def test_render_elides_churny_histories(self):
        ledger = DecisionLedger()
        ledger.record_placement({0: 0}, 0.0)
        for index in range(12):
            source = index % 2
            ledger.ownership(float(index + 1), 0, source, 1 - source)
        timeline = ledger.timeline()
        full = timeline.render(0, end=20.0)
        assert full.count("site") == 13
        short = timeline.render(0, end=20.0, max_intervals=6)
        assert "(8 more)" in short
        assert short.count("site") == 5

    def test_render_unknown_partition(self):
        timeline = MastershipTimeline({})
        assert "no recorded ownership" in timeline.render(99)


class TestExport:
    def test_jsonl_round_trips(self, observed_run, tmp_path):
        _, ledger = observed_run
        path = tmp_path / "masters.jsonl"
        ledger.write_jsonl(str(path))
        loaded = load_jsonl(str(path))
        header = loaded["header"]
        assert header["schema"] == SCHEMA
        assert header["updates_routed"] == ledger.updates_routed
        assert header["partitions_moved"] == ledger.partitions_moved
        assert len(loaded["decisions"]) == len(ledger.decisions)
        assert len(loaded["changes"]) == len(ledger.changes)
        # The export alone reconstructs the final placement.
        placement = {
            int(partition): master
            for partition, master in header["initial_placement"].items()
        }
        for change in loaded["changes"]:
            placement[change["partition"]] = change["destination"]
        assert placement == ledger.final_placement()
        # And the exported decisions recompute offline.
        for record in loaded["decisions"]:
            _, consistent = recompute_decision(record)
            assert consistent

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "schema": "repro-masters/999"}\n')
        with pytest.raises(ValueError, match="schema"):
            load_jsonl(str(path))

    def test_load_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "noheader.jsonl"
        path.write_text('{"kind": "ownership", "at_ms": 0, "partition": 0, '
                        '"source": 0, "destination": 1, "decision_seq": null}\n')
        with pytest.raises(ValueError, match="header"):
            load_jsonl(str(path))

    def test_csv_series(self, observed_run, tmp_path):
        _, ledger = observed_run
        path = tmp_path / "rate.csv"
        ledger.write_csv(str(path), window_ms=100.0)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == \
            "start_ms,routed,remastered,partitions_moved,remaster_fraction"
        assert len(lines) == 1 + len(ledger.rate_series(100.0))

    def test_prometheus_exposition(self, observed_run):
        _, ledger = observed_run
        registry = MetricsRegistry()
        ledger.to_registry(registry)
        text = registry.to_prometheus()
        assert "repro_masters_decisions_total" in text
        assert "repro_masters_locality_share" in text
        assert "repro_masters_convergence_ms" in text

    def test_render_decision_waterfall(self, observed_run):
        _, ledger = observed_run
        record = ledger.decisions[0]
        text = render_decision(record)
        assert f"decision #{record.seq}" in text
        assert "<- chosen" in text
        assert "moves:" in text


class TestConvergenceAcceptance:
    def test_skewed_ycsb_reaches_finite_convergence(self):
        """The paper-facing acceptance run: locality dominates and the
        windowed remaster rate settles below the steady threshold."""
        ledger = DecisionLedger()
        run_benchmark(
            "dynamast", YCSBWorkload(YCSBConfig(zipf_theta=0.9)),
            num_clients=16, duration_ms=800.0, warmup_ms=200.0,
            cluster_config=ClusterConfig(num_sites=4), seed=3, ledger=ledger,
        )
        assert ledger.locality_share() > 0.85
        convergence = ledger.convergence_time(window_ms=100.0)
        assert convergence is not None
        assert 0.0 <= convergence < 800.0
        series = ledger.rate_series(100.0)
        assert series[-1].remaster_fraction <= DEFAULT_THRESHOLD


class TestChaosMastering:
    def test_chaos_run_reports_reconvergence_per_transition(self):
        ledger = DecisionLedger()
        report = run_chaos(
            "dynamast", "crash-restart", num_sites=3, num_clients=4,
            duration_ms=1500.0, seed=4, ledger=ledger,
        )
        mastering = report.mastering_summary(window_ms=250.0)
        assert mastering is not None
        assert mastering["summary"]["decisions"] >= 0
        reconvergence = mastering["reconvergence"]
        assert len(reconvergence) == len(report.fault_events)
        kinds = [entry["kind"] for entry in reconvergence]
        assert "crash" in kinds and "restart" in kinds
        for entry in reconvergence:
            assert entry["reconvergence_ms"] is None \
                or entry["reconvergence_ms"] >= 0.0

    def test_chaos_matrix_folds_portable_mastery(self):
        matrix = run_chaos_matrix(
            ("dynamast",), ("crash",), jobs=2, num_sites=2, num_clients=4,
            duration_ms=800.0, seed=4, mastery=True,
        )
        report = matrix[("dynamast", "crash")]
        mastering = report.mastering_summary()
        assert mastering is not None
        assert mastering["summary"]["updates_routed"] > 0
        # Scalars folded worker-side; the event series stayed behind.
        assert mastering["reconvergence"] == []

    def test_unobserved_chaos_has_no_mastering(self):
        report = run_chaos("dynamast", "crash", num_sites=2, num_clients=2,
                           duration_ms=400.0, seed=4)
        assert report.mastering_summary() is None
