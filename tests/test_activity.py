"""Tests for the in-flight write tracker (release quiescence)."""

import pytest

from repro.sim.core import Environment
from repro.sites.activity import PartitionActivity


class TestPartitionActivity:
    def test_begin_finish_counts(self):
        activity = PartitionActivity(Environment())
        activity.begin(0, [1, 2])
        activity.begin(0, [1])
        assert activity.active(0, 1) == 2
        assert activity.active(0, 2) == 1
        activity.finish(0, [1, 2])
        assert activity.active(0, 1) == 1
        assert activity.active(0, 2) == 0

    def test_finish_without_begin_rejected(self):
        activity = PartitionActivity(Environment())
        with pytest.raises(ValueError):
            activity.finish(0, [7])

    def test_quiesced_immediate_when_idle(self):
        activity = PartitionActivity(Environment())
        event = activity.quiesced(0, 3)
        assert event.triggered

    def test_quiesced_fires_at_zero(self):
        env = Environment()
        activity = PartitionActivity(env)
        activity.begin(1, [5])
        activity.begin(1, [5])
        woken = []

        def waiter():
            yield activity.quiesced(1, 5)
            woken.append(env.now)

        def finisher():
            yield env.timeout(1.0)
            activity.finish(1, [5])
            yield env.timeout(1.0)
            activity.finish(1, [5])

        env.process(waiter())
        env.process(finisher())
        env.run()
        assert woken == [2.0]

    def test_per_site_isolation(self):
        activity = PartitionActivity(Environment())
        activity.begin(0, [5])
        # The same partition at another site is idle.
        assert activity.quiesced(1, 5).triggered
        assert not activity.quiesced(0, 5).triggered

    def test_multiple_waiters_all_wake(self):
        env = Environment()
        activity = PartitionActivity(env)
        activity.begin(0, [9])
        woken = []

        def waiter(label):
            yield activity.quiesced(0, 9)
            woken.append(label)

        env.process(waiter("a"))
        env.process(waiter("b"))

        def finisher():
            yield env.timeout(1.0)
            activity.finish(0, [9])

        env.process(finisher())
        env.run()
        assert sorted(woken) == ["a", "b"]

    def test_requiesce_after_new_writer(self):
        env = Environment()
        activity = PartitionActivity(env)
        activity.begin(0, [2])
        activity.finish(0, [2])
        # Counts reset cleanly; a fresh writer re-registers.
        activity.begin(0, [2])
        assert activity.active(0, 2) == 1
