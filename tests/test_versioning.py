"""Unit tests for version vectors and the paper's consistency rules."""

import pytest

from repro.sim.core import Environment
from repro.versioning import (
    VersionVector,
    VersionWatch,
    can_apply_refresh,
    satisfies_session,
)


class TestVersionVector:
    def test_zeros(self):
        vector = VersionVector.zeros(3)
        assert list(vector) == [0, 0, 0]

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            VersionVector.zeros(0)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            VersionVector([1, -1])
        vector = VersionVector.zeros(2)
        with pytest.raises(ValueError):
            vector[0] = -5

    def test_copy_is_independent(self):
        original = VersionVector([1, 2, 3])
        clone = original.copy()
        clone.increment(0)
        assert list(original) == [1, 2, 3]
        assert list(clone) == [2, 2, 3]

    def test_dominates(self):
        assert VersionVector([2, 2]).dominates(VersionVector([1, 2]))
        assert VersionVector([1, 2]).dominates(VersionVector([1, 2]))
        assert not VersionVector([1, 2]).dominates(VersionVector([2, 1]))

    def test_strictly_less_matches_paper_footnote(self):
        # The proof's ordering: v1 < v2 iff every component is smaller.
        assert VersionVector([0, 1]).strictly_less(VersionVector([1, 2]))
        assert not VersionVector([0, 2]).strictly_less(VersionVector([1, 2]))

    def test_element_max(self):
        merged = VersionVector([1, 5]).element_max(VersionVector([3, 2]))
        assert list(merged) == [3, 5]

    def test_merge_in_place(self):
        session = VersionVector([1, 5])
        session.merge(VersionVector([3, 2]))
        assert list(session) == [3, 5]

    def test_increment_returns_new_value(self):
        vector = VersionVector([0, 7])
        assert vector.increment(1) == 8
        assert list(vector) == [0, 8]

    def test_lag_behind_counts_only_missing_updates(self):
        have = VersionVector([5, 0, 3])
        want = VersionVector([2, 4, 4])
        # Missing: 4 from site 1, 1 from site 2; surplus on site 0 ignored.
        assert have.lag_behind(want) == 5

    def test_lag_behind_zero_when_dominating(self):
        assert VersionVector([5, 5]).lag_behind(VersionVector([1, 2])) == 0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VersionVector([1]).dominates(VersionVector([1, 2]))

    def test_equality_and_tuple(self):
        assert VersionVector([1, 2]) == VersionVector([1, 2])
        assert VersionVector([1, 2]) != VersionVector([2, 1])
        assert VersionVector([1, 2]).to_tuple() == (1, 2)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(VersionVector([1]))

    def test_total(self):
        assert VersionVector([1, 2, 3]).total() == 6


class TestUpdateApplicationRule:
    """Equation 1, including the paper's Figure 2 walk-through."""

    def test_requires_exact_next_from_origin(self):
        svv = VersionVector([0, 0, 0])
        tvv = VersionVector([1, 0, 0])
        assert can_apply_refresh(svv, tvv, origin=0)
        # Applying the same update again must be rejected.
        svv[0] = 1
        assert not can_apply_refresh(svv, tvv, origin=0)
        # Skipping ahead is also rejected.
        tvv_future = VersionVector([3, 0, 0])
        assert not can_apply_refresh(svv, tvv_future, origin=0)

    def test_blocks_until_dependencies_applied(self):
        # Figure 2: T2 commits at S2 after reading T1 (from S1), so
        # R(T2) carries tvv = [1, 1, 0]. A site that has not yet applied
        # R(T1) (svv[0] == 0) must block R(T2).
        svv = VersionVector([0, 0, 0])
        tvv_t2 = VersionVector([1, 1, 0])
        assert not can_apply_refresh(svv, tvv_t2, origin=1)
        # After R(T1) commits locally the rule admits R(T2).
        svv[0] = 1
        assert can_apply_refresh(svv, tvv_t2, origin=1)

    def test_independent_origins_do_not_block_each_other(self):
        svv = VersionVector([0, 0, 0])
        tvv_a = VersionVector([1, 0, 0])
        tvv_b = VersionVector([0, 1, 0])
        assert can_apply_refresh(svv, tvv_a, origin=0)
        assert can_apply_refresh(svv, tvv_b, origin=1)


class TestSessionRule:
    def test_fresh_site_accepted(self):
        assert satisfies_session(VersionVector([3, 2]), VersionVector([3, 1]))

    def test_stale_site_rejected(self):
        assert not satisfies_session(VersionVector([3, 0]), VersionVector([3, 1]))


class TestVersionWatch:
    def test_wait_already_satisfied(self):
        env = Environment()
        svv = VersionVector([2, 2])
        watch = VersionWatch(env, svv)
        fired = []

        def proc():
            yield watch.wait_for(VersionVector([1, 1]))
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [0.0]

    def test_wait_fires_on_notify(self):
        env = Environment()
        svv = VersionVector([0, 0])
        watch = VersionWatch(env, svv)
        fired = []

        def waiter():
            yield watch.wait_for(VersionVector([1, 0]))
            fired.append(env.now)

        def advancer():
            yield env.timeout(4.0)
            svv.increment(0)
            watch.notify()

        env.process(waiter())
        env.process(advancer())
        env.run()
        assert fired == [4.0]
        assert watch.pending == 0

    def test_notify_without_progress_keeps_waiting(self):
        env = Environment()
        svv = VersionVector([0, 0])
        watch = VersionWatch(env, svv)
        fired = []

        def waiter():
            yield watch.wait_for(VersionVector([0, 2]))
            fired.append(env.now)

        def advancer():
            yield env.timeout(1.0)
            svv.increment(1)
            watch.notify()  # still below target
            yield env.timeout(1.0)
            svv.increment(1)
            watch.notify()

        env.process(waiter())
        env.process(advancer())
        env.run()
        assert fired == [2.0]

    def test_multiple_waiters_selective_wakeup(self):
        env = Environment()
        svv = VersionVector([0])
        watch = VersionWatch(env, svv)
        fired = []

        def waiter(target, label):
            yield watch.wait_for(VersionVector([target]))
            fired.append((label, env.now))

        def advancer():
            for _ in range(3):
                yield env.timeout(1.0)
                svv.increment(0)
                watch.notify()

        env.process(waiter(2, "two"))
        env.process(waiter(1, "one"))
        env.process(waiter(3, "three"))
        env.process(advancer())
        env.run()
        assert fired == [("one", 1.0), ("two", 2.0), ("three", 3.0)]

    def test_wait_until_predicate(self):
        env = Environment()
        svv = VersionVector([0])
        watch = VersionWatch(env, svv)
        fired = []

        def waiter():
            yield watch.wait_until(lambda: svv.total() >= 2)
            fired.append(env.now)

        def advancer():
            yield env.timeout(1.0)
            svv.increment(0)
            watch.notify()
            yield env.timeout(1.0)
            svv.increment(0)
            watch.notify()

        env.process(waiter())
        env.process(advancer())
        env.run()
        assert fired == [2.0]
