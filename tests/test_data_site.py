"""Tests for data-site transaction execution and remastering handlers."""

import pytest

from repro.sim.config import ClusterConfig
from repro.sites.data_site import MastershipError
from repro.systems.base import Cluster
from repro.transactions import Transaction
from repro.versioning import VersionVector


def make_cluster(num_sites=2, **overrides):
    return Cluster(ClusterConfig(num_sites=num_sites, **overrides))


class TestExecuteUpdate:
    def test_commit_assigns_transaction_vector(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        txn = Transaction("w", client_id=0, write_set=(("t", 1),))

        def run():
            return (yield from site.execute_update(txn))

        process = cluster.env.process(run())
        tvv = cluster.env.run_until_complete(process)
        assert tvv.to_tuple() == (1, 0)
        assert site.commits == 1
        assert site.svv.to_tuple() == (1, 0)

    def test_begin_vector_set_after_lock_acquisition(self):
        """Proof of Theorem 1 Case 1: a blocked writer's begin vector
        reflects the earlier conflicting commit."""
        cluster = make_cluster()
        site = cluster.sites[0]
        tvvs = []

        def writer(txn):
            tvv = yield from site.execute_update(txn)
            tvvs.append(tvv)

        first = Transaction("w", client_id=0, write_set=(("t", 1),))
        second = Transaction("w", client_id=1, write_set=(("t", 1),))
        cluster.env.process(writer(first))
        cluster.env.process(writer(second))
        cluster.env.run()
        assert len(tvvs) == 2
        # The second writer began after the first committed, so its
        # begin (and hence commit) vector dominates the first's.
        assert tvvs[1].dominates(tvvs[0])
        assert tvvs[1][0] == 2

    def test_conflicting_writers_serialize(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        second = Transaction("w", client_id=1, write_set=(("t", 1),))

        def writer(txn):
            yield from site.execute_update(txn)

        cluster.env.process(writer(Transaction("w", 0, write_set=(("t", 1),))))
        cluster.env.process(writer(second))
        cluster.env.run()
        assert second.timings["lock_wait"] > 0

    def test_disjoint_writers_do_not_block(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        second = Transaction("w", client_id=1, write_set=(("t", 2),))

        def writer(txn):
            yield from site.execute_update(txn)

        cluster.env.process(writer(Transaction("w", 0, write_set=(("t", 1),))))
        cluster.env.process(writer(second))
        cluster.env.run()
        assert second.timings["lock_wait"] == 0

    def test_min_begin_blocks_until_fresh(self):
        cluster = make_cluster()
        site0, site1 = cluster.sites
        done = []

        def writer_at_site1():
            txn = Transaction("w", client_id=0, write_set=(("t", 2),))
            # Require site 1 to have applied site 0's first commit.
            yield from site1.execute_update(txn, min_begin=VersionVector([1, 0]))
            done.append(cluster.env.now)
            assert site1.svv[0] == 1

        def writer_at_site0():
            yield cluster.env.timeout(1.0)
            txn = Transaction("w", client_id=1, write_set=(("t", 1),))
            yield from site0.execute_update(txn)

        cluster.env.process(writer_at_site1())
        cluster.env.process(writer_at_site0())
        cluster.env.run()
        # Must wait at least for the commit (>= 1 ms) plus log delivery.
        assert done and done[0] >= 1.0 + cluster.config.log_delivery_ms

    def test_activity_deregistered_on_commit(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        cluster.activity.begin(0, [7])
        txn = Transaction("w", client_id=0, write_set=(("t", 1),))

        def run():
            yield from site.execute_update(txn, partitions=[7])

        cluster.env.process(run())
        cluster.env.run()
        assert cluster.activity.active(0, 7) == 0

    def test_verify_mastership_aborts_when_not_master(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        cluster.activity.begin(0, [3])
        txn = Transaction("w", client_id=0, write_set=(("t", 1),))

        def run():
            return (yield from site.execute_update(
                txn, partitions=[3], verify_mastership=True
            ))

        process = cluster.env.process(run())
        result = cluster.env.run_until_complete(process)
        assert result is None
        assert cluster.activity.active(0, 3) == 0
        assert site.commits == 0


class TestExecuteRead:
    def test_read_returns_snapshot_vector(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        txn = Transaction("r", client_id=0, read_set=(("t", 1),))

        def run():
            return (yield from site.execute_read(txn))

        process = cluster.env.process(run())
        begin = cluster.env.run_until_complete(process)
        assert begin.to_tuple() == (0, 0)
        assert site.read_txns == 1

    def test_read_waits_for_session_freshness(self):
        cluster = make_cluster()
        site0, site1 = cluster.sites
        observed = []

        def reader():
            txn = Transaction("r", client_id=0, read_set=(("t", 1),))
            begin = yield from site1.execute_read(
                txn, min_begin=VersionVector([1, 0])
            )
            observed.append(begin.to_tuple())

        def writer():
            txn = Transaction("w", client_id=1, write_set=(("t", 1),))
            yield from site0.execute_update(txn)

        cluster.env.process(reader())
        cluster.env.process(writer())
        cluster.env.run()
        assert observed == [(1, 0)]

    def test_reads_do_not_block_on_write_locks(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        read_done = []

        def writer():
            txn = Transaction(
                "w", client_id=0, write_set=(("t", 1),), extra_cpu_ms=50.0
            )
            yield from site.execute_update(txn)

        def reader():
            yield cluster.env.timeout(0.5)  # start mid-write
            txn = Transaction("r", client_id=1, read_set=(("t", 1),))
            yield from site.execute_read(txn)
            read_done.append(cluster.env.now)

        cluster.env.process(writer())
        cluster.env.process(reader())
        cluster.env.run()
        # The reader finished long before the 50 ms write released locks.
        assert read_done and read_done[0] < 10.0


class TestRemasteringHandlers:
    def test_release_then_grant_moves_mastership(self):
        cluster = make_cluster()
        site0, site1 = cluster.sites
        site0.mastered.add(5)

        def run():
            release_vv = yield from site0.release_mastership([5])
            grant_vv = yield from site1.grant_mastership([5], release_vv)
            return release_vv, grant_vv

        process = cluster.env.process(run())
        release_vv, grant_vv = cluster.env.run_until_complete(process)
        assert 5 not in site0.mastered
        assert 5 in site1.mastered
        # Release bumped site 0's vector; grant waited to observe it.
        assert release_vv[0] == 1
        assert grant_vv[0] == 1
        assert grant_vv[1] == 1  # the grant marker itself

    def test_release_of_unmastered_partition_rejected(self):
        cluster = make_cluster()

        def run():
            yield from cluster.sites[0].release_mastership([9])

        process = cluster.env.process(run())
        with pytest.raises(MastershipError):
            cluster.env.run_until_complete(process)

    def test_release_waits_for_inflight_writer(self):
        cluster = make_cluster()
        site0, site1 = cluster.sites
        site0.mastered.add(5)
        cluster.activity.begin(0, [5])  # a routed txn is in flight
        release_time = []

        def slow_writer():
            txn = Transaction(
                "w", client_id=0, write_set=(("t", 1),), extra_cpu_ms=20.0
            )
            yield from site0.execute_update(txn, partitions=[5])

        def remaster():
            release_vv = yield from site0.release_mastership([5])
            release_time.append(cluster.env.now)
            yield from site1.grant_mastership([5], release_vv)

        cluster.env.process(slow_writer())
        cluster.env.process(remaster())
        cluster.env.run()
        # The release could not complete until the 20 ms writer committed.
        assert release_time and release_time[0] >= 20.0

    def test_grant_waits_for_release_marker_propagation(self):
        cluster = make_cluster()
        site0, site1 = cluster.sites
        site0.mastered.add(5)
        grant_time = []

        def run():
            release_vv = yield from site0.release_mastership([5])
            yield from site1.grant_mastership([5], release_vv)
            grant_time.append(cluster.env.now)

        cluster.env.process(run())
        cluster.env.run()
        # The grant had to wait for the release marker's log delivery.
        assert grant_time and grant_time[0] >= cluster.config.log_delivery_ms

    def test_remastered_write_visible_at_new_master(self):
        """End-to-end: write at old master, remaster, write at new master,
        and confirm the new master saw the old update first (SI proof
        Appendix A, Case 2)."""
        cluster = make_cluster()
        site0, site1 = cluster.sites
        site0.mastered.add(5)

        def run():
            first = Transaction("w", client_id=0, write_set=(("t", 1),))
            tvv1 = yield from site0.execute_update(first)
            release_vv = yield from site0.release_mastership([5])
            grant_vv = yield from site1.grant_mastership([5], release_vv)
            second = Transaction("w", client_id=0, write_set=(("t", 1),))
            tvv2 = yield from site1.execute_update(second, min_begin=grant_vv)
            return first, tvv1, second, tvv2

        process = cluster.env.process(run())
        first, tvv1, second, tvv2 = cluster.env.run_until_complete(process)
        # T2's begin dominates T1's commit: no overlapping write conflict.
        assert tvv2.dominates(tvv1)
        # Both versions exist in order at the new master.
        record = site1.database.record(("t", 1))
        values = [version.value for version in record.versions()]
        assert values[-2:] == [first.txn_id, second.txn_id]


class TestTwoPhaseCommitBranches:
    def test_prepare_holds_locks_until_decision(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        trace = []

        def coordinator():
            txn = Transaction("w", client_id=0, write_set=(("t", 1), ("t", 2)))
            begin_vv = yield from site.execute_branch(txn, (("t", 1),))
            yield from site.prepare_branch(txn, (("t", 1),))
            trace.append(("prepared", cluster.env.now))
            yield cluster.env.timeout(10.0)  # uncertainty window
            yield from site.commit_branch(txn, (("t", 1),), begin_vv)
            trace.append(("committed", cluster.env.now))

        def local_writer():
            yield cluster.env.timeout(0.5)
            txn = Transaction("w", client_id=1, write_set=(("t", 1),))
            yield from site.execute_update(txn)
            trace.append(("local", cluster.env.now))

        cluster.env.process(coordinator())
        cluster.env.process(local_writer())
        cluster.env.run()
        labels = [label for label, _ in trace]
        assert labels == ["prepared", "committed", "local"]
        local_time = dict(trace)["local"]
        assert local_time > 10.0  # blocked across the uncertainty window

    def test_abort_branch_releases_locks(self):
        cluster = make_cluster()
        site = cluster.sites[0]
        done = []

        def coordinator():
            txn = Transaction("w", client_id=0, write_set=(("t", 1),))
            yield from site.execute_branch(txn, (("t", 1),))
            yield from site.prepare_branch(txn, (("t", 1),))
            yield from site.abort_branch(txn, (("t", 1),))

        def local_writer():
            yield cluster.env.timeout(0.5)
            txn = Transaction("w", client_id=1, write_set=(("t", 1),))
            yield from site.execute_update(txn)
            done.append(True)

        cluster.env.process(coordinator())
        cluster.env.process(local_writer())
        cluster.env.run()
        assert done
        assert site.commits == 1  # only the local writer committed


class TestDataShipping:
    def test_ship_out_and_install(self):
        cluster = Cluster(ClusterConfig(num_sites=2), replicated=False)
        source, destination = cluster.sites
        keys = (("t", 1), ("t", 2), ("t", 3))

        def run():
            payload = yield from source.ship_out(keys)
            yield from destination.install_shipment(keys)
            return payload

        process = cluster.env.process(run())
        payload = cluster.env.run_until_complete(process)
        assert payload == 3 * cluster.config.sizes.record_bytes

    def test_unreplicated_sites_do_not_propagate(self):
        cluster = Cluster(ClusterConfig(num_sites=2), replicated=False)
        site0, site1 = cluster.sites
        txn = Transaction("w", client_id=0, write_set=(("t", 1),))

        def run():
            yield from site0.execute_update(txn)

        cluster.env.process(run())
        cluster.env.run()
        assert site0.svv.to_tuple() == (1, 0)
        assert site1.svv.to_tuple() == (0, 0)
        assert site1.database.record(("t", 1)) is None
