"""Consistency invariants for the comparator systems.

The comparators share DynaMast's substrate, so their replication and
commit paths must uphold the same guarantees: multi-master's 2PC
branches produce refresh streams that converge at every replica, and
the partitioned stores keep exactly one copy of every record.
"""

import random

from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction


def run_random(system_name, seed=0, num_sites=3, num_clients=6, txns=20):
    replicated = system_name in ("dynamast", "single-master", "multi-master")
    cluster = Cluster(ClusterConfig(num_sites=num_sites, seed=seed), replicated=replicated)
    scheme = PartitionScheme(lambda key: key[1] // 5, num_partitions=8)
    kwargs = {"scheme": scheme}
    if system_name in ("multi-master", "partition-store", "leap"):
        kwargs["placement"] = scheme.range_placement(num_sites)
    system = build_system(system_name, cluster, **kwargs)

    def client(client_id):
        rng = random.Random(seed * 100 + client_id)
        session = system.new_session(client_id)
        for _ in range(txns):
            keys = tuple(
                set(("t", rng.randrange(40)) for _ in range(rng.randint(1, 3)))
            )
            txn = Transaction("w", client_id, write_set=keys)
            yield from system.submit(txn, session)

    processes = [cluster.env.process(client(c)) for c in range(num_clients)]
    cluster.env.run(until=20000.0)
    assert all(not process.is_alive for process in processes)
    cluster.env.run(until=cluster.env.now + 50.0)
    return cluster, system


class TestMultiMasterConvergence:
    def test_replicas_converge_under_2pc(self):
        cluster, _ = run_random("multi-master", seed=3)
        svvs = {site.svv.to_tuple() for site in cluster.sites}
        assert len(svvs) == 1, f"multi-master replicas diverged: {svvs}"
        baseline = cluster.sites[0]
        for site in cluster.sites[1:]:
            for table in baseline.database.tables.values():
                for record in table:
                    other = site.database.record(record.key)
                    assert other is not None
                    assert other.latest.value == record.latest.value

    def test_branch_updates_logged_at_each_participant(self):
        cluster, system = run_random("multi-master", seed=4)
        total_logged = sum(
            len([r for r in site.log.records if r.kind == "update"])
            for site in cluster.sites
        )
        total_commits = sum(site.commits for site in cluster.sites)
        assert total_logged == total_commits


class TestPartitionedStores:
    def test_partition_store_single_copy(self):
        cluster, system = run_random("partition-store", seed=5)
        # Every record exists at exactly one site (no replication).
        seen = {}
        for site in cluster.sites:
            for table in site.database.tables.values():
                for record in table:
                    assert record.key not in seen, (
                        f"{record.key} exists at sites {seen[record.key]} "
                        f"and {site.index}"
                    )
                    seen[record.key] = site.index
        assert seen  # something was written

    def test_partition_store_records_at_owners(self):
        cluster, system = run_random("partition-store", seed=6)
        for site in cluster.sites:
            for table in site.database.tables.values():
                for record in table:
                    partition = system.scheme.partition(record.key)
                    assert system.placement[partition] == site.index

    def test_leap_single_copy_after_migrations(self):
        cluster, system = run_random("leap", seed=7)
        seen = {}
        for site in cluster.sites:
            for table in site.database.tables.values():
                for record in table:
                    # LEAP installs at the destination but the source
                    # keeps only its (stale) shell after shipping; the
                    # *owner map* is the source of truth.
                    seen.setdefault(record.key, set()).add(site.index)
        for key in seen:
            owner = system.owner_of(key)
            assert owner in seen[key], (
                f"owner map says {owner} for {key}, copies at {seen[key]}"
            )

    def test_single_master_log_only_at_master(self):
        cluster, _ = run_random("single-master", seed=8)
        assert len(cluster.sites[0].log) > 0
        for site in cluster.sites[1:]:
            assert len(site.log) == 0
