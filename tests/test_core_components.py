"""Focused tests for selector components and less-travelled paths."""

import pytest

from repro.core.partitions import PartitionTable
from repro.replication.log import UPDATE, DurableLog, LogRecord
from repro.sim.config import ClusterConfig, SizeModel
from repro.sim.core import Environment, SimulationError
from repro.sim.network import Network, NetworkConfig
from repro.sim.rand import ZipfGenerator
from repro.sim.resources import RWLock
import random


class TestPartitionTable:
    def make(self, placement=None):
        return PartitionTable(Environment(), placement or {0: 0, 1: 1, 2: 0})

    def test_master_lookup_and_update(self):
        table = self.make()
        assert table.master_of(1) == 1
        table.set_master(1, 0)
        assert table.master_of(1) == 0

    def test_unknown_partition(self):
        table = self.make()
        with pytest.raises(KeyError):
            table.master_of(99)

    def test_masters_of_and_grouping(self):
        table = self.make()
        assert table.masters_of([0, 1, 2]) == {0, 1}
        groups = table.group_by_master([0, 1, 2])
        assert groups == {0: [0, 2], 1: [1]}

    def test_snapshot_is_copy(self):
        table = self.make()
        snapshot = table.snapshot()
        table.set_master(0, 1)
        assert snapshot[0] == 0

    def test_masters_per_site(self):
        table = self.make()
        assert table.masters_per_site(2) == [2, 1]

    def test_len(self):
        assert len(self.make()) == 3


class TestRWLockDowngrade:
    def test_downgrade_keeps_shared_hold(self):
        env = Environment()
        lock = RWLock(env)
        trace = []

        def writer():
            yield lock.acquire_write()
            yield env.timeout(1.0)
            lock.downgrade()
            trace.append(("downgraded", env.now))
            yield env.timeout(5.0)
            lock.release_read()

        def reader():
            yield env.timeout(0.5)
            yield lock.acquire_read()
            trace.append(("reader", env.now))
            lock.release_read()

        def other_writer():
            yield env.timeout(0.6)
            yield lock.acquire_write()
            trace.append(("writer2", env.now))
            lock.release_write()

        env.process(writer())
        env.process(reader())
        env.process(other_writer())
        env.run()
        # The queued reader gets in right at downgrade (shared with the
        # downgrader); the second writer waits for both readers to go.
        assert trace == [("downgraded", 1.0), ("reader", 1.0), ("writer2", 6.0)]

    def test_downgrade_without_write_hold(self):
        lock = RWLock(Environment())
        with pytest.raises(SimulationError):
            lock.downgrade()


class TestDurableLogTraffic:
    def test_replication_bytes_accounted_per_subscriber(self):
        env = Environment()
        network = Network(env, NetworkConfig())
        sizes = SizeModel()
        log = DurableLog(
            env, 0, network=network,
            record_size=lambda r: sizes.update_record_bytes(len(r.writes), 2),
        )
        log.subscribe()
        log.subscribe()
        log.append(LogRecord(UPDATE, 0, (1, 0), writes=((("t", 1), 9),)))
        expected = sizes.update_record_bytes(1, 2) * 3  # producer + 2 subs
        assert network.traffic.bytes_by_category["replication"] == expected

    def test_marker_bytes_counted_as_remaster(self):
        env = Environment()
        network = Network(env, NetworkConfig())
        log = DurableLog(env, 0, network=network, record_size=lambda r: 64)
        log.append(LogRecord("release", 0, (1, 0), partitions=(3,)))
        assert network.traffic.bytes_by_category["remaster"] == 64


class TestZipfEdgeCases:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 0.5, random.Random(0))
        with pytest.raises(ValueError):
            ZipfGenerator(10, -1.0, random.Random(0))

    def test_uniform_when_theta_zero(self):
        generator = ZipfGenerator(4, 0.0, random.Random(7))
        counts = [0, 0, 0, 0]
        for _ in range(8000):
            counts[generator.sample()] += 1
        assert max(counts) < 1.25 * min(counts)

    def test_single_element(self):
        generator = ZipfGenerator(1, 2.0, random.Random(0))
        assert generator.sample() == 0


class TestLEAPOwnership:
    def test_static_keys_never_ship(self):
        from repro.partitioning.schemes import PartitionScheme
        from repro.systems import Cluster, build_system
        from repro.transactions import Transaction

        cluster = Cluster(ClusterConfig(num_sites=2), replicated=False)
        scheme = PartitionScheme(
            lambda key: None if key[0] == "item" else key[1] // 10, 4
        )
        system = build_system(
            "leap", cluster, scheme=scheme, placement=scheme.range_placement(2)
        )
        assert system.owner_of(("item", 3)) == -1

        txn = Transaction("r", 1, read_set=(("item", 1), ("item", 2)))
        session = system.new_session(1)

        def run():
            return (yield from system.submit(txn, session))

        process = cluster.env.process(run())
        outcome = cluster.env.run_until_complete(process)
        assert outcome.committed
        assert not outcome.remastered
        assert system.records_shipped == 0
