"""Randomized end-to-end recovery checks.

After an arbitrary concurrent run with remastering, the durable logs
alone must reconstruct both the data and the mastership map exactly —
for any seed.
"""

import pytest

from repro.replication import recover_database, recover_mastership
from tests.test_si_invariants import run_random_workload


@pytest.mark.parametrize("seed", [11, 23, 37])
def test_mastership_recovered_for_any_history(seed):
    cluster, system, _ = run_random_workload(seed=seed)
    initial = {
        partition: partition % cluster.num_sites
        for partition in range(system.scheme.num_partitions)
    }
    logs = [site.log for site in cluster.sites]
    recovered = recover_mastership(logs, initial)
    assert recovered == system.selector.table.snapshot()
    # The recovered map agrees with each site's own mastered set.
    for site in cluster.sites:
        owned = {p for p, s in recovered.items() if s == site.index}
        assert owned == site.mastered


@pytest.mark.parametrize("seed", [11, 23])
def test_database_recovered_for_any_history(seed):
    cluster, _, _ = run_random_workload(seed=seed)
    logs = [site.log for site in cluster.sites]
    database, svv = recover_database(cluster.env, logs)
    live = cluster.sites[0]
    assert svv.to_tuple() == live.svv.to_tuple()
    for table in live.database.tables.values():
        for record in table:
            recovered = database.record(record.key)
            assert recovered is not None
            assert recovered.latest.value == record.latest.value


@pytest.mark.parametrize("seed", [41])
def test_recovery_is_idempotent(seed):
    cluster, system, _ = run_random_workload(seed=seed)
    initial = {
        partition: partition % cluster.num_sites
        for partition in range(system.scheme.num_partitions)
    }
    logs = [site.log for site in cluster.sites]
    first = recover_mastership(logs, initial)
    second = recover_mastership(logs, initial)
    assert first == second
