"""Integration tests across the five system architectures."""

import pytest

from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction


def make_system(name, num_sites=2, num_partitions=6, keys_per_partition=10):
    replicated = name in ("dynamast", "single-master", "multi-master")
    cluster = Cluster(ClusterConfig(num_sites=num_sites), replicated=replicated)
    scheme = PartitionScheme(
        lambda key: key[1] // keys_per_partition, num_partitions
    )
    kwargs = {"scheme": scheme}
    if name in ("multi-master", "partition-store", "leap"):
        kwargs["placement"] = scheme.range_placement(num_sites)
    system = build_system(name, cluster, **kwargs)
    return cluster, system


def run_client(cluster, system, txns, client_id=0):
    session = system.new_session(client_id)
    outcomes = []

    def client():
        for txn in txns:
            outcome = yield from system.submit(txn, session)
            outcomes.append(outcome)

    process = cluster.env.process(client())
    cluster.env.run_until_complete(process)
    return outcomes, session


ALL = ("dynamast", "single-master", "multi-master", "partition-store", "leap")


class TestEverySystemCommits:
    @pytest.mark.parametrize("name", ALL)
    def test_update_and_read(self, name):
        cluster, system = make_system(name)
        txns = [
            Transaction("w", 0, write_set=(("t", 3), ("t", 33))),
            Transaction("w", 0, write_set=(("t", 3),)),
            Transaction("r", 0, read_set=(("t", 3), ("t", 33))),
        ]
        outcomes, session = run_client(cluster, system, txns)
        assert all(outcome.committed for outcome in outcomes)
        # Sessions observed the updates (replicated systems track svv).
        if system.replicated:
            assert session.cvv.total() >= 2

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_given_seed(self, name):
        def run():
            cluster, system = make_system(name)
            txns = [
                Transaction("w", 0, write_set=(("t", k), ("t", k + 30)))
                for k in range(5)
            ]
            run_client(cluster, system, txns)
            return cluster.env.now, [site.commits for site in cluster.sites]

        assert run() == run()


class TestSingleMaster:
    def test_all_updates_commit_at_master(self):
        cluster, system = make_system("single-master")
        txns = [Transaction("w", 0, write_set=(("t", k),)) for k in (5, 25, 45)]
        run_client(cluster, system, txns)
        assert cluster.sites[0].commits == 3
        assert cluster.sites[1].commits == 0

    def test_never_remasters(self):
        cluster, system = make_system("single-master")
        txns = [
            Transaction("w", 0, write_set=(("t", 5), ("t", 55))),
            Transaction("w", 0, write_set=(("t", 15), ("t", 35))),
        ]
        outcomes, _ = run_client(cluster, system, txns)
        assert not any(outcome.remastered for outcome in outcomes)
        assert system.selector.remaster_operations == 0

    def test_reads_can_run_at_replicas(self):
        cluster, system = make_system("single-master")
        txns = [Transaction("r", 0, read_set=(("t", 5),)) for _ in range(20)]
        run_client(cluster, system, txns)
        total_reads = sum(site.read_txns for site in cluster.sites)
        assert total_reads == 20
        assert cluster.sites[1].read_txns > 0  # replicas served some


class TestMultiMaster:
    def test_cross_partition_write_runs_2pc(self):
        cluster, system = make_system("multi-master")
        txn = Transaction("w", 0, write_set=(("t", 5), ("t", 15)))
        outcomes, _ = run_client(cluster, system, [txn])
        assert outcomes[0].distributed
        # Both branch sites committed their branch... partitions 0 and 1
        # are both at site 0 under range placement over 2 sites, so use
        # partitions from different halves instead.

    def test_cross_site_write_commits_at_both_sites(self):
        cluster, system = make_system("multi-master")
        txn = Transaction("w", 0, write_set=(("t", 5), ("t", 35)))
        outcomes, _ = run_client(cluster, system, [txn])
        assert outcomes[0].distributed
        assert cluster.sites[0].commits == 1
        assert cluster.sites[1].commits == 1

    def test_single_partition_write_is_local(self):
        cluster, system = make_system("multi-master")
        txn = Transaction("w", 0, write_set=(("t", 5), ("t", 7)))
        outcomes, _ = run_client(cluster, system, [txn])
        assert not outcomes[0].distributed

    def test_mastership_never_changes(self):
        cluster, system = make_system("multi-master")
        before = {index: set(site.mastered) for index, site in enumerate(cluster.sites)}
        txns = [Transaction("w", 0, write_set=(("t", 5), ("t", 45)))] * 3
        run_client(cluster, system, [Transaction("w", 0, write_set=t.write_set) for t in txns])
        after = {index: set(site.mastered) for index, site in enumerate(cluster.sites)}
        assert before == after


class TestPartitionStore:
    def test_multi_unit_read_scatter_gathers(self):
        cluster, system = make_system("partition-store")
        txn = Transaction(
            "r", 0, scan_set=tuple(("t", k) for k in range(0, 60, 5))
        )
        outcomes, _ = run_client(cluster, system, [txn])
        assert outcomes[0].distributed
        assert system.scatter_gather_reads == 1

    def test_single_unit_read_is_local(self):
        cluster, system = make_system("partition-store")
        txn = Transaction("r", 0, read_set=(("t", 3), ("t", 7)))
        outcomes, _ = run_client(cluster, system, [txn])
        assert not outcomes[0].distributed

    def test_unreplicated_storage(self):
        cluster, system = make_system("partition-store")
        txn = Transaction("w", 0, write_set=(("t", 5),))
        run_client(cluster, system, [txn])
        cluster.run(until=cluster.env.now + 10.0)
        # The write exists only at the owning site.
        assert cluster.sites[0].database.record(("t", 5)) is not None
        assert cluster.sites[1].database.record(("t", 5)) is None


class TestLEAP:
    def test_localizes_to_client_home_site(self):
        cluster, system = make_system("leap")
        # Client 1's home is site 1; keys 3, 5 start at site 0.
        txn = Transaction("w", 1, write_set=(("t", 3), ("t", 5)))
        outcomes, _ = run_client(cluster, system, [txn], client_id=1)
        assert outcomes[0].remastered  # data was shipped
        assert system.owner_of(("t", 3)) == 1
        assert system.owner_of(("t", 5)) == 1
        assert cluster.sites[1].commits == 1

    def test_second_transaction_runs_without_shipping(self):
        cluster, system = make_system("leap")
        txns = [
            Transaction("w", 1, write_set=(("t", 3), ("t", 5))),
            Transaction("w", 1, write_set=(("t", 3), ("t", 5))),
        ]
        outcomes, _ = run_client(cluster, system, txns, client_id=1)
        assert outcomes[0].remastered
        assert not outcomes[1].remastered

    def test_read_only_transactions_also_localize(self):
        cluster, system = make_system("leap")
        txn = Transaction("r", 1, scan_set=tuple(("t", k) for k in range(10)))
        outcomes, _ = run_client(cluster, system, [txn], client_id=1)
        assert outcomes[0].remastered
        assert system.records_shipped == 10

    def test_clients_on_different_sites_ping_pong(self):
        cluster, system = make_system("leap")
        shared = (("t", 3),)
        session0 = system.new_session(0)
        session1 = system.new_session(1)
        shipped = []

        def alternating():
            for _ in range(3):
                out = yield from system.submit(
                    Transaction("w", 0, write_set=shared), session0
                )
                shipped.append(out.remastered)
                out = yield from system.submit(
                    Transaction("w", 1, write_set=shared), session1
                )
                shipped.append(out.remastered)

        process = cluster.env.process(alternating())
        cluster.env.run_until_complete(process)
        # After the first touch, every alternation ships the record back.
        assert shipped[1:] == [True] * 5


class TestSessionGuarantees:
    @pytest.mark.parametrize("name", ("dynamast", "single-master", "multi-master"))
    def test_session_vector_monotone(self, name):
        """Strong-session SI: a session's vector never regresses."""
        cluster, system = make_system(name)
        session = system.new_session(0)
        history = []

        def client():
            for step in range(6):
                if step % 2 == 0:
                    txn = Transaction("w", 0, write_set=(("t", step),))
                else:
                    txn = Transaction("r", 0, read_set=(("t", step - 1),))
                yield from system.submit(txn, session)
                history.append(session.cvv.copy())

        process = cluster.env.process(client())
        cluster.env.run_until_complete(process)
        for previous, current in zip(history, history[1:]):
            assert current.dominates(previous)

    def test_read_after_write_sees_own_update(self):
        """A client's read observes its preceding write (no inversion)."""
        cluster, system = make_system("dynamast")
        session = system.new_session(0)
        observed = []

        def client():
            txn = Transaction("w", 0, write_set=(("t", 5),))
            yield from system.submit(txn, session)
            write_id = txn.txn_id
            read = Transaction("r", 0, read_set=(("t", 5),))
            yield from system.submit(read, session)
            # Check against every site the read could have used: under
            # the session vector, the routed site had applied the write.
            observed.append(write_id)

        process = cluster.env.process(client())
        cluster.env.run_until_complete(process)
        # The session vector reflects the write at some site.
        assert session.cvv.total() >= 1
