"""Tests for the 2PC coordination module used by the comparators."""

import pytest

from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.systems.two_phase_commit import group_writes_by_unit, two_phase_commit
from repro.transactions import Transaction
from repro.versioning import VersionVector


def make_multi_master(num_sites=3, num_partitions=6, keys_per_partition=10):
    cluster = Cluster(ClusterConfig(num_sites=num_sites))
    scheme = PartitionScheme(
        lambda key: None if key[0] == "static" else key[1] // keys_per_partition,
        num_partitions,
    )
    placement = scheme.range_placement(num_sites)
    system = build_system("multi-master", cluster, scheme=scheme, placement=placement)
    return cluster, system


class TestGrouping:
    def test_groups_by_unit(self):
        cluster, system = make_multi_master()
        txn = Transaction(
            "w", 0, write_set=(("t", 1), ("t", 5), ("t", 15), ("t", 25))
        )
        groups = group_writes_by_unit(system, txn)
        assert set(groups) == {0, 1, 2}
        assert groups[0] == (("t", 1), ("t", 5))

    def test_static_table_write_rejected(self):
        cluster, system = make_multi_master()
        txn = Transaction("w", 0, write_set=(("static", 1),))
        with pytest.raises(ValueError):
            group_writes_by_unit(system, txn)


class TestTwoPhaseCommit:
    def test_all_branches_commit(self):
        cluster, system = make_multi_master()
        txn = Transaction("w", 0, write_set=(("t", 5), ("t", 25), ("t", 45)))
        branches = group_writes_by_unit(system, txn)

        def run():
            return (yield from two_phase_commit(system, txn, branches))

        process = cluster.env.process(run())
        merged = cluster.env.run_until_complete(process)
        # Every participant committed its branch and the merged vector
        # reflects all three commits.
        assert [site.commits for site in cluster.sites] == [1, 1, 1]
        assert merged.total() == 3

    def test_coordinator_is_largest_branch(self):
        cluster, system = make_multi_master()
        # Two keys at site 0's units, one key at site 2's.
        txn = Transaction("w", 0, write_set=(("t", 1), ("t", 11), ("t", 41)))
        branches = group_writes_by_unit(system, txn)
        items = sorted(branches.items(), key=lambda item: (-len(item[1]), item[0]))
        coordinator_unit = items[0][0]
        assert system.placement[coordinator_unit] == 0

    def test_uncertainty_window_blocks_local_writer(self):
        cluster, system = make_multi_master()
        finish_times = {}

        def distributed():
            txn = Transaction("w", 0, write_set=(("t", 5), ("t", 45)))
            branches = group_writes_by_unit(system, txn)
            yield from two_phase_commit(system, txn, branches)
            finish_times["2pc"] = cluster.env.now

        def local():
            yield cluster.env.timeout(1.2)  # arrive once the branch holds locks
            txn = Transaction("w", 1, write_set=(("t", 5),))
            yield from cluster.sites[0].execute_update(txn)
            finish_times["local"] = cluster.env.now

        cluster.env.process(distributed())
        cluster.env.process(local())
        cluster.env.run()
        # The local conflicting writer waits out the uncertainty window:
        # it cannot commit before the 2PC branch releases its locks.
        assert finish_times["local"] > finish_times["2pc"] - 1.0
        assert finish_times["local"] > 2.5

    def test_min_begin_enforced_at_branches(self):
        cluster, system = make_multi_master()
        done = []

        def earlier_write():
            txn = Transaction("w", 0, write_set=(("t", 1),))
            yield from cluster.sites[0].execute_update(txn)

        def distributed():
            # Require every branch to have seen site 0's first commit.
            txn = Transaction("w", 1, write_set=(("t", 5), ("t", 45)))
            branches = group_writes_by_unit(system, txn)
            merged = yield from two_phase_commit(
                system, txn, branches, min_begin=VersionVector([1, 0, 0])
            )
            done.append(merged)
            # Site 2's branch waited for the refresh of site 0's commit.
            assert cluster.sites[2].svv[0] >= 1

        def sequence():
            yield cluster.env.process(earlier_write())
            yield cluster.env.process(distributed())

        process = cluster.env.process(sequence())
        cluster.env.run_until_complete(process)
        assert done and done[0].dominates(VersionVector([1, 0, 0]))

    def test_network_traffic_categorized(self):
        cluster, system = make_multi_master()
        txn = Transaction("w", 0, write_set=(("t", 5), ("t", 45)))
        branches = group_writes_by_unit(system, txn)

        def run():
            yield from two_phase_commit(system, txn, branches)

        process = cluster.env.process(run())
        cluster.env.run_until_complete(process)
        assert cluster.network.traffic.bytes_by_category.get("2pc", 0) > 0
        # Three rounds to one remote participant = 3 round trips.
        assert cluster.network.traffic.messages_by_category["2pc"] == 6
