"""Golden-trace identity pins for the optimized hot paths.

The tentpole performance work (event-loop slimming in ``sim/core``,
lazy statistics folding in ``core/statistics``, lock/vector fast paths)
must not move a single simulated event or statistic. These tests pin:

* the exact wakeup/completion ordering of a kernel scenario that
  exercises timeouts (including same-time tie-breaks), success and
  failure propagation, ``AllOf``/``AnyOf``, resource contention,
  readers-writer locks, stores, and interrupts;
* the exact numeric snapshots of :class:`AccessStatistics` under a
  seeded observe/query interleaving that exercises sampling, the
  inter-transaction window, expiry, and the retention cap.

The digests were recorded on the pre-optimization code; regenerate them
only for an intentional simulated-behavior change (see CONTRIBUTING.md,
"Updating fingerprints").
"""

import hashlib
import json
import random

from repro.core.statistics import AccessStatistics, StatisticsConfig
from repro.sim.core import Environment, SimulationError
from repro.sim.resources import Resource, RWLock, Store

#: sha256[:16] of the kernel scenario's full event trace.
KERNEL_TRACE_DIGEST = "725edf95bc4aa69a"

#: The first entries of that trace, spelled out so a divergence is
#: debuggable without re-deriving the whole scenario by hand.
KERNEL_TRACE_HEAD = [
    (0.1, "read-acquire:ra"),
    (0.5, "tick:c:0"),
    (0.75, "caught:boom"),
    (0.8, "put:0"),
    (0.8, "got:0"),
    (1.0, "tick:a:0"),
]

#: sha256[:16] of the statistics observe/query interleaving.
STATISTICS_DIGEST = "56d7576def153bc6"


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


def run_kernel_scenario():
    """A dense kernel workout; returns the (time, label) trace."""
    env = Environment()
    trace = []

    def log(label):
        trace.append((round(env.now, 9), label))

    # -- timeouts with ties: same deadline, creation order breaks it --
    def ticker(name, delay, repeats):
        for index in range(repeats):
            yield env.timeout(delay)
            log(f"tick:{name}:{index}")

    env.process(ticker("a", 1.0, 4))
    env.process(ticker("b", 1.0, 4))
    env.process(ticker("c", 0.5, 6))

    # -- events: success value, failure propagation, defuse ----------
    gate = env.event()

    def opener():
        yield env.timeout(1.25)
        log("open-gate")
        gate.succeed("opened")

    def waiter(name):
        value = yield gate
        log(f"gate:{name}:{value}")

    env.process(opener())
    env.process(waiter("w1"))
    env.process(waiter("w2"))

    def failer():
        yield env.timeout(0.75)
        raise RuntimeError("boom")

    doomed = env.process(failer())

    def catcher():
        try:
            yield doomed
        except RuntimeError as exc:
            log(f"caught:{exc}")

    env.process(catcher())

    # -- conditions: AllOf ordering, AnyOf first-wins ----------------
    def all_waiter():
        values = yield env.all_of([env.timeout(2.0, "x"), env.timeout(1.5, "y")])
        log(f"all:{values}")

    def any_waiter():
        value = yield env.any_of([env.timeout(3.0, "slow"), env.timeout(2.5, "fast")])
        log(f"any:{value}")

    env.process(all_waiter())
    env.process(any_waiter())

    # -- resources: contention, queueing, helper generator ------------
    cpu = Resource(env, capacity=2)

    def worker(name, hold):
        yield from cpu.use(hold)
        log(f"done:{name}")

    for index, hold in enumerate((1.0, 1.0, 0.5, 0.25)):
        env.process(worker(f"r{index}", hold))

    # -- readers-writer lock: fairness and downgrade -----------------
    rw = RWLock(env)

    def reader(name, at, hold):
        yield env.timeout(at)
        yield rw.acquire_read()
        log(f"read-acquire:{name}")
        yield env.timeout(hold)
        rw.release_read()
        log(f"read-release:{name}")

    def writer(name, at, hold):
        yield env.timeout(at)
        yield rw.acquire_write()
        log(f"write-acquire:{name}")
        yield env.timeout(hold)
        rw.downgrade()
        log(f"downgrade:{name}")
        yield env.timeout(hold)
        rw.release_read()

    env.process(reader("ra", 0.1, 1.0))
    env.process(writer("wa", 0.2, 0.6))
    env.process(reader("rb", 0.3, 0.4))

    # -- stores: put-then-get and get-then-put ------------------------
    box = Store(env)

    def producer():
        for index in range(3):
            yield env.timeout(0.8)
            box.put(index)
            log(f"put:{index}")

    def consumer():
        for _ in range(3):
            item = yield box.get()
            log(f"got:{item}")

    env.process(consumer())
    env.process(producer())

    # -- interrupts: mid-wait unwind runs finally blocks -------------
    def victim():
        try:
            yield env.timeout(50.0)
        except SimulationError:
            log("victim-unwound")
        finally:
            log("victim-finally")

    target = env.process(victim())

    def assassin():
        yield env.timeout(2.2)
        target.interrupt(SimulationError("killed"))
        log("interrupted")

    env.process(assassin())

    env.run(until=40.0)
    log(f"end:{env.now}")
    return trace


class TestKernelGoldenTrace:
    def test_trace_matches_golden_digest(self):
        trace = run_kernel_scenario()
        assert trace[: len(KERNEL_TRACE_HEAD)] == KERNEL_TRACE_HEAD
        assert _digest(trace) == KERNEL_TRACE_DIGEST, (
            "kernel event ordering diverged from the pre-optimization "
            "golden trace — an optimization changed simulated behavior"
        )

    def test_trace_is_reproducible(self):
        assert run_kernel_scenario() == run_kernel_scenario()


def run_statistics_scenario():
    """Seeded observe/query interleaving; returns the snapshot payload."""
    config = StatisticsConfig(
        sample_rate=0.85,
        inter_txn_window_ms=20.0,
        expiry_ms=120.0,
        max_samples=24,
        max_inter_pairs=16,
    )
    stats = AccessStatistics(config, rng=random.Random(11))
    driver = random.Random(97)
    snapshots = []
    now = 0.0
    for step in range(400):
        now += driver.random() * 4.0
        client = driver.randrange(6)
        width = driver.randint(1, 4)
        partitions = [driver.randrange(12) for _ in range(width)]
        stats.observe(now, client, partitions)
        if step % 7 == 3:
            first = driver.randrange(12)
            second = driver.randrange(12)
            snapshots.append([
                round(stats.write_fraction(first), 12),
                round(stats.access_fraction(first), 12),
                round(stats.intra_probability(first, second), 12),
                round(stats.inter_probability(first, second), 12),
                sorted(
                    (key, round(value, 9))
                    for key, value in stats.intra_partners(first).items()
                ),
                [
                    round(load, 12)
                    for load in stats.site_write_loads(lambda p: p % 3, 3)
                ],
            ])
    return {
        "observed": stats.observed,
        "sampled": stats.sampled,
        "total_writes": stats.total_writes,
        "partition_writes": sorted(stats.partition_writes.items()),
        "co_intra": sorted(
            (left, sorted(row.items())) for left, row in stats.co_intra.items()
        ),
        "co_inter": sorted(
            (left, sorted(row.items())) for left, row in stats.co_inter.items()
        ),
        "snapshots": snapshots,
    }


class TestStatisticsGolden:
    def test_snapshots_match_golden_digest(self):
        payload = run_statistics_scenario()
        assert _digest(payload) == STATISTICS_DIGEST, (
            "statistics snapshots diverged from the pre-optimization "
            "golden values — lazy folding changed observable state"
        )

    def test_queries_do_not_perturb_state(self):
        """Issuing extra queries between observes (which folds pending
        samples at different points) must not change the end state."""
        baseline = run_statistics_scenario()
        config = StatisticsConfig(
            sample_rate=0.85,
            inter_txn_window_ms=20.0,
            expiry_ms=120.0,
            max_samples=24,
            max_inter_pairs=16,
        )
        stats = AccessStatistics(config, rng=random.Random(11))
        driver = random.Random(97)
        now = 0.0
        for step in range(400):
            now += driver.random() * 4.0
            client = driver.randrange(6)
            width = driver.randint(1, 4)
            partitions = [driver.randrange(12) for _ in range(width)]
            stats.observe(now, client, partitions)
            # Query every step instead of every 7th.
            stats.write_fraction(0)
            stats.access_fraction(1)
            if step % 7 == 3:
                _ = (driver.randrange(12), driver.randrange(12))  # keep draws aligned
        assert sorted(stats.partition_writes.items()) == baseline["partition_writes"]
        assert stats.total_writes == baseline["total_writes"]
