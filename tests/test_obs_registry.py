"""Tests for counters, gauges, and streaming histograms."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.bench.metrics import LatencySummary, Metrics, _percentile
from repro.transactions import Outcome, Transaction


class TestCounterGauge:
    def test_counter_monotone(self):
        counter = Counter("commits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_levels(self):
        gauge = Gauge("inflight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1.0
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestStreamingHistogram:
    def test_rejects_bad_geometry_and_samples(self):
        with pytest.raises(ValueError):
            StreamingHistogram("h", base=0.0)
        with pytest.raises(ValueError):
            StreamingHistogram("h", growth=1.0)
        histogram = StreamingHistogram("h")
        with pytest.raises(ValueError):
            histogram.record(-1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty(self):
        histogram = StreamingHistogram("h")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.bucket_counts() == []

    def test_exact_moments(self):
        histogram = StreamingHistogram("h")
        for value in (1.0, 2.0, 3.0, 10.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 16.0
        assert histogram.mean == 4.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 10.0

    def test_underflow_bucket(self):
        histogram = StreamingHistogram("h", base=1.0)
        histogram.record(0.0)
        histogram.record(0.5)
        histogram.record(2.0)
        assert histogram.count == 3
        # The two sub-base samples land in the underflow bucket, whose
        # representative is min(minimum, base).
        assert histogram.quantile(0.0) == 0.0
        pairs = histogram.bucket_counts()
        assert pairs[0] == (0.0, 2)

    def test_quantiles_within_bucket_error(self):
        """Any quantile is within one bucket's relative width of exact."""
        growth = 1.05
        histogram = StreamingHistogram("h", growth=growth)
        rng = random.Random(42)
        samples = [rng.expovariate(1 / 5.0) + 0.01 for _ in range(5000)]
        for value in samples:
            histogram.record(value)
        ordered = sorted(samples)
        for q in (0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0):
            exact = _percentile(ordered, q)
            approx = histogram.quantile(q)
            assert approx == pytest.approx(exact, rel=growth - 1.0)

    def test_quantile_clamped_to_observed_range(self):
        histogram = StreamingHistogram("h")
        histogram.record(3.0)
        assert histogram.quantile(0.0) == 3.0
        assert histogram.quantile(1.0) == 3.0

    def test_boundary_values_bucket_once(self):
        histogram = StreamingHistogram("h", base=1.0, growth=2.0)
        # Exact bucket boundaries: 1, 2, 4 -> indices 0, 1, 2.
        for value in (1.0, 2.0, 4.0):
            histogram.record(value)
        assert sum(count for _, count in histogram.bucket_counts()) == 3
        lows = [low for low, _ in histogram.bucket_counts()]
        assert lows == [1.0, 2.0, 4.0]

    def test_merge(self):
        left = StreamingHistogram("l")
        right = StreamingHistogram("r")
        for value in (1.0, 2.0):
            left.record(value)
        for value in (3.0, 4.0):
            right.record(value)
        left.merge(right)
        assert left.count == 4
        assert left.total == 10.0
        assert left.minimum == 1.0
        assert left.maximum == 4.0
        with pytest.raises(ValueError):
            left.merge(StreamingHistogram("x", growth=2.0))

    def test_latency_summary_of_histogram(self):
        histogram = StreamingHistogram("h")
        values = [float(v) for v in range(1, 101)]
        for value in values:
            histogram.record(value)
        summary = LatencySummary.of_histogram(histogram)
        exact = LatencySummary.of(values)
        assert summary.count == exact.count
        assert summary.mean == pytest.approx(exact.mean)
        assert summary.maximum == exact.maximum
        assert summary.p50 == pytest.approx(exact.p50, rel=0.05)
        assert summary.p99 == pytest.approx(exact.p99, rel=0.05)
        assert LatencySummary.of_histogram(StreamingHistogram("e")).count == 0


class TestHistogramQuantileProperty:
    """The documented error band, as a property over arbitrary samples.

    The class docstring promises any quantile estimate is within one
    bucket's relative width of the exact sample quantile. That holds
    for samples at or above ``base`` (everything below collapses into
    the underflow bucket), so the strategy draws from [base, 1e7].
    """

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-3, max_value=1e7,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=400,
        ),
        growth=st.sampled_from([1.05, 1.1, 1.5, 2.0]),
        q=st.sampled_from([0.50, 0.99]),
    )
    def test_p50_p99_within_documented_band(self, samples, growth, q):
        histogram = StreamingHistogram("h", growth=growth)
        for value in samples:
            histogram.record(value)
        exact = _percentile(sorted(samples), q)
        approx = histogram.quantile(q)
        # One bucket's relative width; the midpoint estimate is within
        # half of that, the other half is slack for boundary rounding.
        assert abs(approx - exact) <= (growth - 1.0) * exact + 1e-12
        # Clamping keeps estimates inside the observed range.
        assert histogram.minimum <= approx <= histogram.maximum


def parse_exposition(text):
    """(name, labels-string, value) triples for non-comment lines."""
    rows = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        metric, value = line.rsplit(" ", 1)
        if "{" in metric:
            name, labels = metric.split("{", 1)
            labels = "{" + labels
        else:
            name, labels = metric, ""
        rows.append((name, labels, value))
    return rows


def bucket_series(text, metric):
    """(le, cumulative-count) pairs of one metric's bucket samples."""
    pairs = []
    for name, labels, value in parse_exposition(text):
        if name != f"{metric}_bucket":
            continue
        le = labels.split('le="', 1)[1].split('"', 1)[0]
        pairs.append((math.inf if le == "+Inf" else float(le), int(value)))
    return pairs


class TestPrometheusExposition:
    def test_empty_registry_renders_nothing(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("commits").inc(3)
        registry.gauge("inflight").set(2.5)
        text = registry.to_prometheus()
        assert "# TYPE commits counter\ncommits 3\n" in text
        assert "# TYPE inflight gauge\ninflight 2.5\n" in text
        assert text.endswith("\n")

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("2pc.started").inc(1)
        text = registry.to_prometheus()
        assert "_2pc_started 1" in text
        assert "2pc.started" not in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        text = registry.to_prometheus({
            "path": 'C:\\temp\\"x"',
            "note": "line1\nline2",
        })
        assert '\\\\' in text  # backslash escaped
        assert '\\"x\\"' in text  # quotes escaped
        assert '\\nline2' in text  # newline escaped, not literal
        assert "\nline2" not in text.replace("\\n", "")
        # Labels are sorted for deterministic output.
        assert text.index('note="') < text.index('path="')

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", base=1.0, growth=2.0)
        for value in (0.5, 1.5, 1.6, 3.0, 100.0):
            histogram.record(value)
        text = registry.to_prometheus()
        pairs = bucket_series(text, "lat")
        les = [le for le, _ in pairs]
        counts = [count for _, count in pairs]
        assert les == sorted(les)
        assert les[-1] == math.inf
        assert counts == sorted(counts)  # non-decreasing: cumulative
        assert counts[0] == 1  # the 0.5 underflow sample, under le=base
        assert counts[-1] == 5
        rows = dict(
            (name, value) for name, _, value in parse_exposition(text)
        )
        assert rows["lat_count"] == "5"
        assert float(rows["lat_sum"]) == pytest.approx(106.6)

    def test_bucket_upper_bounds_cover_samples(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        samples = [0.002, 0.5, 7.7, 123.0]
        for value in samples:
            histogram.record(value)
        pairs = bucket_series(registry.to_prometheus(), "lat")
        # Every sample is <= some finite bucket's upper bound whose
        # cumulative count includes it.
        for sample in samples:
            covering = [count for le, count in pairs if le >= sample]
            assert covering, sample
            assert covering[0] >= 1


class TestPrometheusEdgeCases:
    def test_labels_on_an_empty_registry_render_nothing(self):
        # Labels decorate samples; they must not fabricate any.
        assert MetricsRegistry().to_prometheus({"system": "dynamast"}) == ""

    def test_literal_backslash_n_differs_from_real_newline(self):
        # A value containing backslash+n and one containing an actual
        # newline must stay distinguishable after escaping: the former
        # becomes \\n (escaped backslash, literal n), the latter \n.
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        literal = registry.to_prometheus({"v": "a\\nb"})
        newline = registry.to_prometheus({"v": "a\nb"})
        assert literal != newline
        assert 'v="a\\\\nb"' in literal
        assert 'v="a\\nb"' in newline
        assert "\n".join((literal, newline)).count("a") == 2  # one line each

    def test_registered_but_untouched_instruments_expose_zero(self):
        # A zero sample is a measurement; a missing series is not.
        registry = MetricsRegistry()
        registry.counter("commits")
        registry.gauge("inflight")
        text = registry.to_prometheus()
        assert "commits 0" in text
        assert "inflight 0" in text

    def test_never_recorded_histogram_still_exposes_a_schema(self):
        registry = MetricsRegistry()
        registry.histogram("lat")
        rows = parse_exposition(registry.to_prometheus())
        values = {(name, labels): value for name, labels, value in rows}
        # No finite buckets (nothing recorded, underflow suppressed),
        # but the +Inf bucket, sum, and count must still be present.
        assert values[("lat_bucket", '{le="+Inf"}')] == "0"
        assert float(values[("lat_sum", "")]) == 0.0
        assert values[("lat_count", "")] == "0"
        bucket_lines = [name for name, _, _ in rows if name == "lat_bucket"]
        assert bucket_lines == ["lat_bucket"]

    def test_le_merges_and_sorts_with_caller_labels(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", base=1.0, growth=2.0)
        histogram.record(0.5)   # underflow bucket at le=base
        histogram.record(3.0)
        text = registry.to_prometheus({"zz_site": "0", "aa_run": 'q"x'})
        for name, labels, _ in parse_exposition(text):
            if name != "lat_bucket":
                continue
            # le slots into the sorted label list, escaping intact.
            assert labels.startswith('{aa_run="q\\"x",le="')
            assert labels.endswith('zz_site="0"}')
        pairs = bucket_series(text, "lat")
        assert pairs[0][0] == 1.0  # underflow rendered at le=base
        assert [count for _, count in pairs] == sorted(
            count for _, count in pairs
        )
        assert pairs[-1] == (math.inf, 2)

    def test_underflow_only_histogram_keeps_cumulative_consistent(self):
        registry = MetricsRegistry()
        registry.histogram("lat", base=10.0, growth=2.0).record(0.25)
        pairs = bucket_series(registry.to_prometheus(), "lat")
        assert pairs == [(10.0, 1), (math.inf, 1)]


class TestMetricsToPrometheus:
    def make_txn(self, kind="rmw"):
        return Transaction(kind, 0, write_set=(("t", 1),))

    def filled(self, streaming=False):
        metrics = Metrics(streaming=streaming)
        metrics.record(self.make_txn(), Outcome(True, remastered=True), 2.5, 10.0)
        metrics.record(self.make_txn("read"), Outcome(True), 7.0, 11.0)
        metrics.record(
            self.make_txn(), Outcome(False, retries=1, abort_reason="timeout"),
            1.0, 12.0,
        )
        return metrics

    def test_counters_and_labels(self):
        text = self.filled().to_prometheus({"system": "dynamast"})
        rows = parse_exposition(text)
        values = {(name, labels): value for name, labels, value in rows}
        assert values[("repro_commits_total", '{system="dynamast"}')] == "2"
        assert values[(
            "repro_aborts_by_reason_total",
            '{reason="timeout",system="dynamast"}',
        )] == "1"

    def test_one_type_line_per_metric(self):
        text = self.filled().to_prometheus()
        type_lines = [line for line in text.splitlines()
                      if line.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))
        assert "# TYPE repro_latency_ms histogram" in type_lines

    def test_latency_histogram_cumulative_per_type(self):
        text = self.filled().to_prometheus()
        for txn_type in ("rmw", "read"):
            rows = [
                (name, labels, value)
                for name, labels, value in parse_exposition(text)
                if f'txn_type="{txn_type}"' in labels
            ]
            counts = [int(value) for name, _, value in rows
                      if name == "repro_latency_ms_bucket"]
            assert counts == sorted(counts)
            final = [value for name, _, value in rows
                     if name == "repro_latency_ms_count"]
            assert counts[-1] == int(final[0]) == 1

    def test_streaming_and_exact_modes_agree(self):
        exact = self.filled(streaming=False).to_prometheus({"seed": "3"})
        streaming = self.filled(streaming=True).to_prometheus({"seed": "3"})
        assert exact == streaming

    def test_empty_metrics(self):
        text = Metrics().to_prometheus()
        assert "repro_commits_total 0" in text
        assert "repro_latency_ms" not in text


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["max"] == 2.0
