"""Tests for counters, gauges, and streaming histograms."""

import random

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.bench.metrics import LatencySummary, _percentile


class TestCounterGauge:
    def test_counter_monotone(self):
        counter = Counter("commits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_levels(self):
        gauge = Gauge("inflight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1.0
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestStreamingHistogram:
    def test_rejects_bad_geometry_and_samples(self):
        with pytest.raises(ValueError):
            StreamingHistogram("h", base=0.0)
        with pytest.raises(ValueError):
            StreamingHistogram("h", growth=1.0)
        histogram = StreamingHistogram("h")
        with pytest.raises(ValueError):
            histogram.record(-1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty(self):
        histogram = StreamingHistogram("h")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.bucket_counts() == []

    def test_exact_moments(self):
        histogram = StreamingHistogram("h")
        for value in (1.0, 2.0, 3.0, 10.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 16.0
        assert histogram.mean == 4.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 10.0

    def test_underflow_bucket(self):
        histogram = StreamingHistogram("h", base=1.0)
        histogram.record(0.0)
        histogram.record(0.5)
        histogram.record(2.0)
        assert histogram.count == 3
        # The two sub-base samples land in the underflow bucket, whose
        # representative is min(minimum, base).
        assert histogram.quantile(0.0) == 0.0
        pairs = histogram.bucket_counts()
        assert pairs[0] == (0.0, 2)

    def test_quantiles_within_bucket_error(self):
        """Any quantile is within one bucket's relative width of exact."""
        growth = 1.05
        histogram = StreamingHistogram("h", growth=growth)
        rng = random.Random(42)
        samples = [rng.expovariate(1 / 5.0) + 0.01 for _ in range(5000)]
        for value in samples:
            histogram.record(value)
        ordered = sorted(samples)
        for q in (0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0):
            exact = _percentile(ordered, q)
            approx = histogram.quantile(q)
            assert approx == pytest.approx(exact, rel=growth - 1.0)

    def test_quantile_clamped_to_observed_range(self):
        histogram = StreamingHistogram("h")
        histogram.record(3.0)
        assert histogram.quantile(0.0) == 3.0
        assert histogram.quantile(1.0) == 3.0

    def test_boundary_values_bucket_once(self):
        histogram = StreamingHistogram("h", base=1.0, growth=2.0)
        # Exact bucket boundaries: 1, 2, 4 -> indices 0, 1, 2.
        for value in (1.0, 2.0, 4.0):
            histogram.record(value)
        assert sum(count for _, count in histogram.bucket_counts()) == 3
        lows = [low for low, _ in histogram.bucket_counts()]
        assert lows == [1.0, 2.0, 4.0]

    def test_merge(self):
        left = StreamingHistogram("l")
        right = StreamingHistogram("r")
        for value in (1.0, 2.0):
            left.record(value)
        for value in (3.0, 4.0):
            right.record(value)
        left.merge(right)
        assert left.count == 4
        assert left.total == 10.0
        assert left.minimum == 1.0
        assert left.maximum == 4.0
        with pytest.raises(ValueError):
            left.merge(StreamingHistogram("x", growth=2.0))

    def test_latency_summary_of_histogram(self):
        histogram = StreamingHistogram("h")
        values = [float(v) for v in range(1, 101)]
        for value in values:
            histogram.record(value)
        summary = LatencySummary.of_histogram(histogram)
        exact = LatencySummary.of(values)
        assert summary.count == exact.count
        assert summary.mean == pytest.approx(exact.mean)
        assert summary.maximum == exact.maximum
        assert summary.p50 == pytest.approx(exact.p50, rel=0.05)
        assert summary.p99 == pytest.approx(exact.p99, rel=0.05)
        assert LatencySummary.of_histogram(StreamingHistogram("e")).count == 0


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["max"] == 2.0
