"""Shared helpers for the per-figure benchmark files.

Every benchmark regenerates one table or figure of the paper's
evaluation: it runs the experiment driver once (``benchmark.pedantic``
with a single round — these are simulation experiments, not
microbenchmarks), prints a paper-vs-measured table, and asserts the
figure's *shape* criteria (orderings and rough factors; absolute
numbers are not expected to match a simulated substrate).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
