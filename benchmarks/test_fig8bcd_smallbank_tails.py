"""Figures 8b-8d (Appendix F): SmallBank tail latency per class.

Paper's shape: single-master's update tails are >=7x DynaMast's (all
updates funnel through one site); the 2PC systems' multi-row tails are
~4x DynaMast's (uncertainty-window blocking); LEAP's multi-row tails
are ~40x (migration waits); read-only Balance runs at replicas for the
replicated systems with comparable latency.
"""

from _smallbank_cache import get_suite
from repro.bench.report import print_table, ratio


def test_fig8bcd_smallbank_tails(once):
    results = once(get_suite)

    for figure, txn_type in (
        ("8b", "two_row_update"),
        ("8c", "single_update"),
        ("8d", "balance"),
    ):
        rows = []
        for system, result in results.items():
            summary = result.latency(txn_type)
            rows.append([system, summary.p50, summary.p95, summary.p99])
        print_table(
            f"Figure {figure}: SmallBank {txn_type} latency (ms)",
            ["system", "p50", "p95", "p99"],
            rows,
        )

    def p99(system, txn_type):
        return results[system].latency(txn_type).p99

    def p50(system, txn_type):
        return results[system].latency(txn_type).p50

    # Single-master update latency: far above DynaMast's across the
    # distribution (the saturated master queues every update). The
    # paper reports >=7x at the tail; our deterministic service times
    # compress tails, so the median carries the load effect here.
    assert p50("single-master", "two_row_update") >= 1.5 * p50("dynamast", "two_row_update"), (
        "paper: single-master multi-row latency far above DynaMast's"
    )
    assert p99("single-master", "two_row_update") >= 1.15 * p99("dynamast", "two_row_update")
    assert p99("single-master", "single_update") >= 1.5 * p99("dynamast", "single_update")
    # 2PC systems' multi-row tails exceed DynaMast's.
    assert p99("partition-store", "two_row_update") >= 1.5 * p99("dynamast", "two_row_update"), (
        "paper: partition-store multi-row tails ~4x DynaMast's"
    )
    assert p99("multi-master", "two_row_update") >= 1.5 * p99("dynamast", "two_row_update")
    # Balance reads: replicated systems all serve them at replicas.
    assert p99("multi-master", "balance") <= 4.0 * p99("dynamast", "balance")
    assert p99("single-master", "balance") <= 4.0 * p99("dynamast", "balance")
