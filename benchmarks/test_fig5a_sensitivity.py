"""Figure 5a + §VI-B6: hyperparameter sensitivity on skewed YCSB.

Paper's shape: with every weight non-zero, throughput stays within ~8%
of the maximum (robustness); setting w_balance to 0 costs ~40%
because mastership concentrates, and scaling it far down skews routing
(paper: 34% of requests to the hottest site vs an even 25%); the
co-access weights contribute smaller improvements (~16%).
"""

from repro.bench.experiments import fig5a_sensitivity
from repro.bench.report import print_table


def test_fig5a_sensitivity(once):
    result = once(fig5a_sensitivity)

    print_table(
        "Figure 5a: throughput per weight setting (skewed YCSB)",
        ["setting", "txn/s", "remaster rate", "max route fraction"],
        [
            [label, tput, round(result.remaster_rate[label], 3),
             round(max(result.route_fractions[label] or [0.0]), 3)]
            for label, tput in result.throughput.items()
        ],
    )

    # Robustness: every non-zero setting is within a modest band of the
    # best (paper: within ~8%; we allow 25% at simulation scale).
    nonzero = {
        label: tput
        for label, tput in result.throughput.items()
        if not label.endswith("x0")
    }
    best = max(nonzero.values())
    for label, tput in nonzero.items():
        assert tput >= 0.75 * best, (
            f"non-zero weight setting {label} fell {1 - tput / best:.0%} "
            "below the best configuration"
        )

    # Ablating the balance weight must hurt under skew and skew routing.
    balanced = result.throughput["balance x1"]
    unbalanced = result.throughput["balance x0"]
    assert unbalanced <= 0.9 * balanced, (
        "paper: removing the balance feature costs ~40% under skew"
    )
    routing_with = max(result.route_fractions["balance x1"])
    routing_without = max(result.route_fractions["balance x0.01"])
    assert routing_without >= routing_with, (
        "paper: scaling balance down skews routing toward hot sites"
    )
