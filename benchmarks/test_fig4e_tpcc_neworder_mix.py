"""Figure 4e: TPC-C throughput as the share of New-Order grows.

Paper's shape: when New-Order transactions dominate the workload,
DynaMast delivers many times (paper: >15x) the throughput of the 2PC
systems and ~20x LEAP's, and ~1.64x single-master's. The simulated
magnitudes are smaller (see EXPERIMENTS.md) but the gap must widen with
the New-Order share, DynaMast must win at the New-Order-heavy end, and
single-master must trail it there.
"""

from repro.bench.experiments import fig4e_neworder_mix
from repro.bench.report import print_table, ratio


def test_fig4e_tpcc_neworder_mix(once):
    results = once(fig4e_neworder_mix)
    fractions = sorted(next(iter(results.values())))

    rows = []
    for system in results:
        rows.append(
            [system]
            + [results[system][fraction].throughput for fraction in fractions]
        )
    print_table(
        "Figure 4e: TPC-C throughput (txn/s) vs %% New-Order",
        ["system"] + [f"{int(f * 100)}%% NO" for f in fractions],
        rows,
    )

    top = fractions[-1]
    tput = {system: results[system][top].throughput for system in results}
    # The part of the paper's figure that reproduces exactly: the gap
    # over single-master (paper: 1.64x) grows with the New-Order share
    # as the master site saturates, and LEAP trails badly.
    assert tput["dynamast"] >= 1.6 * tput["single-master"], (
        "paper: ~1.64x over single-master at high NO%"
    )
    assert tput["dynamast"] >= 1.5 * tput["leap"], (
        "paper: ~20x over LEAP at high NO% (direction)"
    )

    def gap(system, fraction):
        return ratio(
            results["dynamast"][fraction].throughput,
            results[system][fraction].throughput,
        )

    assert gap("single-master", fractions[-1]) > gap("single-master", fractions[0]), (
        "the single-master gap must widen as New-Order dominates"
    )
    # Known deviation (EXPERIMENTS.md): our warehouse-granular 2PC
    # comparators do not collapse by 15x as the paper's do; DynaMast
    # must at least stay in their band.
    for system in ("multi-master", "partition-store"):
        assert tput["dynamast"] >= 0.75 * tput[system], (
            f"DynaMast must stay within the 2PC band vs {system}"
        )
        assert gap(system, fractions[-1]) >= 0.85 * gap(system, fractions[0]), (
            f"DynaMast's relative position vs {system} must hold as NO%% grows"
        )
