"""§VI-B3: New-Order latency as cross-warehouse transactions increase.

Paper's shape: going from 0% to one-third cross-warehouse New-Orders
inflates partition-store's and multi-master's latency by ~3x (2PC on
every cross-warehouse transaction, which also slows single-warehouse
transactions), while DynaMast's grows only ~1.75x; at one-third,
DynaMast also beats single-master by ~25% because it balances load
instead of pinning every New-Order to one site.
"""

from repro.bench.experiments import cross_warehouse_sweep
from repro.bench.report import print_table, ratio


def test_cross_warehouse_neworder_latency(once):
    results = once(cross_warehouse_sweep)
    fractions = sorted(next(iter(results.values())))

    rows = []
    for system in results:
        rows.append(
            [system]
            + [
                results[system][fraction].latency("new_order").mean
                for fraction in fractions
            ]
        )
    print_table(
        "New-Order mean latency (ms) vs %% cross-warehouse",
        ["system"] + [f"{int(f * 100)}%%" for f in fractions],
        rows,
    )

    def growth(system):
        return ratio(
            results[system][fractions[-1]].latency("new_order").mean,
            results[system][fractions[0]].latency("new_order").mean,
        )

    growth_rows = [[system, growth(system)] for system in results]
    print_table(
        "Latency growth 0%% -> 33%% cross-warehouse (paper: PS/MM ~3x, DynaMast ~1.75x)",
        ["system", "growth x"],
        growth_rows,
    )

    # DynaMast degrades gracefully (paper: 1.75x from 0% -> 33%).
    assert growth("dynamast") <= 2.0, (
        "remastering must keep New-Order latency growth bounded"
    )
    # The 2PC systems feel every cross-warehouse transaction.
    assert growth("partition-store") >= 1.1
    assert growth("multi-master") >= 1.1
    # At one-third cross-warehouse, DynaMast beats single-master
    # comfortably (paper: -25%).
    top = fractions[-1]
    assert (
        results["dynamast"][top].latency("new_order").mean
        <= 0.9 * results["single-master"][top].latency("new_order").mean
    ), "paper: ~25% below single-master at 33% cross-warehouse"
    # Known deviation (EXPERIMENTS.md): with warehouse-granular, fast
    # 2PC the comparators' growth (paper ~3x) stays below DynaMast's
    # here, so the growth *ratio* between them is not asserted.
