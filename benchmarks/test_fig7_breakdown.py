"""Figure 7 + §VI-B7 + Appendix D: DynaMast's overhead breakdown.

Paper's shape on uniform 50/50 YCSB: network ~40% and transaction
logic ~45% of mean latency; the routing decision (including
remastering) under ~1%; selector metadata lock/lookup ~10%; begin and
commit each around 1%. Fewer than 1-3% of transactions require
remastering, and remastering traffic is a tiny fraction of the
replication traffic (paper: 3 MB/s vs 155 MB/s).
"""

from repro.bench.experiments import fig7_breakdown
from repro.bench.report import print_table


def test_fig7_breakdown(once):
    result = once(fig7_breakdown)

    paper = {
        "network": "~40%",
        "execute": "~45%",
        "routing": "<1%",
        "selector_lock": "~10%",
        "begin": "<1%",
        "commit": "~1%",
        "freshness_wait": "(in begin)",
        "lock_wait": "(in begin)",
        "other": "-",
    }
    print_table(
        "Figure 7: DynaMast latency breakdown (uniform 50/50 YCSB)",
        ["phase", "measured share", "paper"],
        [
            [phase, round(share, 4), paper.get(phase, "-")]
            for phase, share in sorted(result.breakdown.items())
        ],
    )
    print_table(
        "Remastering frequency and traffic (Appendix D)",
        ["metric", "measured", "paper"],
        [
            ["txns requiring remastering", f"{result.remaster_txn_fraction:.2%}", "<1-3%"],
            ["remaster bytes / replication bytes",
             f"{result.traffic_bytes.get('remaster', 0) / max(1, result.traffic_bytes.get('replication', 1)):.3%}",
             "~2% (3 vs 155 MB/s)"],
        ],
    )

    breakdown = result.breakdown
    # Execution and network dominate, as in the paper.
    assert breakdown.get("execute", 0) + breakdown.get("network", 0) >= 0.5, (
        "transaction logic + network must dominate the breakdown"
    )
    # Routing decisions (incl. remastering) are a small share.
    assert breakdown.get("routing", 0) <= 0.10, (
        "paper: routing including remastering is ~1% of latency"
    )
    assert breakdown.get("begin", 0) <= 0.15
    assert breakdown.get("commit", 0) <= 0.10
    # Remastering is rare and its traffic is marginal.
    assert result.remaster_txn_fraction <= 0.10, (
        "paper: <1-3% of transactions require remastering"
    )
    replication = result.traffic_bytes.get("replication", 0)
    remaster = result.traffic_bytes.get("remaster", 0)
    assert remaster <= 0.10 * max(1, replication), (
        "paper: remastering traffic is a small fraction of replication traffic"
    )
