"""Ablation: remastering granularity (DESIGN.md design choice).

DynaMast remasters partition *groups* (paper §V-B). This ablation
varies how finely TPC-C stock is chunked: coarse chunks mean a single
cross-warehouse New-Order drags a large slice of the home warehouse's
stock to a remote site, so far more subsequent home transactions must
remaster it back. Fine chunks keep the collateral damage small.

Not a paper figure — an ablation of a design choice the reproduction
had to make (see DESIGN.md / EXPERIMENTS.md).
"""

from repro.bench.harness import run_benchmark
from repro.bench.report import print_table
from repro.sim.config import ClusterConfig
from repro.workloads import TPCCConfig, TPCCWorkload


def run_granularity(stock_chunk):
    workload = TPCCWorkload(TPCCConfig(stock_chunk=stock_chunk))
    return run_benchmark(
        "dynamast",
        workload,
        num_clients=80,
        duration_ms=1000.0,
        warmup_ms=300.0,
        cluster_config=ClusterConfig(num_sites=4, cores_per_site=6),
    )


def test_ablation_partition_granularity(once):
    def sweep():
        return {chunk: run_granularity(chunk) for chunk in (50, 500, 2500)}

    results = once(sweep)
    rows = []
    for chunk, result in sorted(results.items()):
        no = result.latency("new_order")
        rows.append([
            f"{chunk} items/chunk",
            result.throughput,
            result.metrics.remaster_fraction(),
            no.mean,
            no.p99,
        ])
    print_table(
        "Ablation: TPC-C stock partition granularity (DynaMast)",
        ["granularity", "txn/s", "remaster fraction", "NO mean ms", "NO p99 ms"],
        rows,
    )

    fine = results[50]
    coarse = results[2500]
    # Coarser chunks force more remastering-back of stolen stock.
    assert coarse.metrics.remaster_fraction() >= fine.metrics.remaster_fraction()
    # And fine granularity must not lose throughput.
    assert fine.throughput >= 0.9 * coarse.throughput
