"""Figure 4b: YCSB uniform 90/10 RMW/scan — write-intensive throughput.

Paper's shape: DynaMast delivers ~2.5x the best comparator;
multi-master drops *below* partition-store (fewer scans to leverage its
replicas, but it still pays refresh costs); single-master saturates
fastest of all; LEAP trails DynaMast because it must localize the
read-only transactions DynaMast serves from replicas.
"""

from repro.bench.experiments import fig4b_ycsb_write_heavy
from repro.bench.report import print_table, ratio


def test_fig4b_ycsb_write_heavy(once):
    results = once(fig4b_ycsb_write_heavy)
    tput = {system: result.throughput for system, result in results.items()}

    print_table(
        "Figure 4b: YCSB uniform 90/10 throughput",
        ["system", "txn/s", "dynamast/x", "paper"],
        [
            ["dynamast", tput["dynamast"], 1.0, "best"],
            ["leap", tput["leap"], ratio(tput["dynamast"], tput["leap"]),
             "below dynamast"],
            ["partition-store", tput["partition-store"],
             ratio(tput["dynamast"], tput["partition-store"]), ">= 2.5x below"],
            ["multi-master", tput["multi-master"],
             ratio(tput["dynamast"], tput["multi-master"]), "below partition-store"],
            ["single-master", tput["single-master"],
             ratio(tput["dynamast"], tput["single-master"]), "saturated"],
        ],
    )

    assert tput["dynamast"] == max(tput.values()), "DynaMast must win Fig 4b"
    best_comparator = max(v for k, v in tput.items() if k != "dynamast")
    assert tput["dynamast"] >= 1.3 * best_comparator
    assert tput["dynamast"] >= 2.5 * tput["partition-store"], (
        "paper: ~2.5x over the 2PC systems"
    )
    assert tput["partition-store"] >= 0.95 * tput["multi-master"], (
        "paper: multi-master at or below partition-store at 90% RMW"
    )
    # The single master site is pinned at 100% CPU while its replicas
    # idle: the bottleneck the paper describes.
    utilization = results["single-master"].site_utilization
    assert utilization[0] >= 0.95, (
        "paper: the single master site saturates rapidly at 90% RMW"
    )
    assert max(utilization[1:]) <= 0.6, "replicas must be far from saturated"
    assert tput["dynamast"] >= 2.0 * tput["single-master"]
