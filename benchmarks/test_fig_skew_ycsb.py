"""§VI-B4: skewed (Zipfian 0.75) YCSB 90/10 RMW/scan throughput.

Paper's shape: DynaMast spreads the hot partitions' master copies over
all sites and improves throughput by ~10x over multi-master, ~4x over
partition-store, ~1.8x over single-master and ~1.6x over LEAP. The
fixed-placement systems cannot redistribute the hot partitions and
bottleneck on the sites that own them.
"""

from repro.bench.experiments import skew_suite
from repro.bench.report import print_table, ratio


def test_skew_ycsb_throughput(once):
    results = once(skew_suite)
    tput = {system: result.throughput for system, result in results.items()}

    print_table(
        "Skewed YCSB (Zipf 0.75, 90/10) throughput",
        ["system", "txn/s", "dynamast/x measured", "paper x"],
        [
            ["dynamast", tput["dynamast"], 1.0, 1.0],
            ["leap", tput["leap"], ratio(tput["dynamast"], tput["leap"]), 1.6],
            ["single-master", tput["single-master"],
             ratio(tput["dynamast"], tput["single-master"]), 1.8],
            ["partition-store", tput["partition-store"],
             ratio(tput["dynamast"], tput["partition-store"]), 4.0],
            ["multi-master", tput["multi-master"],
             ratio(tput["dynamast"], tput["multi-master"]), 10.0],
        ],
    )

    dynamast = results["dynamast"]
    print_table(
        "DynaMast under skew: balanced routing (paper Fig 5a: ~25% per site)",
        ["site"] + [str(i) for i in range(len(dynamast.route_fractions))],
        [["fraction"] + [round(f, 3) for f in dynamast.route_fractions]],
    )

    assert tput["dynamast"] == max(tput.values())
    assert tput["dynamast"] >= 3.0 * tput["multi-master"], (
        "paper: ~10x over multi-master under skew"
    )
    assert tput["dynamast"] >= 3.0 * tput["partition-store"], (
        "paper: ~4x over partition-store under skew"
    )
    assert tput["dynamast"] >= 1.4 * tput["single-master"], (
        "paper: ~1.8x over single-master under skew"
    )
    assert tput["dynamast"] >= 1.3 * tput["leap"], (
        "paper: ~1.6x over LEAP under skew"
    )
    # DynaMast's routing stays balanced despite the skew.
    fractions = dynamast.route_fractions
    assert max(fractions) - min(fractions) < 0.15, (
        "remastering must spread the hot masters across sites"
    )
