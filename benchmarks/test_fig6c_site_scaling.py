"""Figure 6c (Appendix E): DynaMast scalability from 4 to 16 sites.

Paper's shape: with the uniform 50/50 mix and a fixed per-site client
load, throughput grows more than 3x as the number of data sites grows
4x (near-linear, sub-linear tail because every site still applies every
refresh), and the site selector does not become the bottleneck.
"""

from repro.bench.experiments import fig6c_site_scaling
from repro.bench.report import print_table, ratio


def test_fig6c_site_scaling(once):
    results = once(fig6c_site_scaling)
    sites = sorted(results)

    print_table(
        "Figure 6c: DynaMast throughput vs number of data sites",
        ["sites", "txn/s", "speedup vs 4 sites"],
        [
            [count, results[count].throughput,
             ratio(results[count].throughput, results[sites[0]].throughput)]
            for count in sites
        ],
    )

    speedup = ratio(
        results[sites[-1]].throughput, results[sites[0]].throughput
    )
    assert speedup >= 2.5, (
        f"paper: >3x throughput from 4 to 16 sites (measured {speedup:.2f}x)"
    )
    # Monotonic scaling.
    ordered = [results[count].throughput for count in sites]
    assert all(b > a * 0.98 for a, b in zip(ordered, ordered[1:])), (
        "throughput must not regress as sites are added"
    )
