"""Figure 4c: TPC-C New-Order latency across systems.

Paper's shape: DynaMast reduces average New-Order latency by ~40% vs
single-master, ~85% vs partition-store/multi-master (which also show
~10x higher p90 tails), and ~96% vs LEAP (whose p99 is ~40x higher).

In this simulation the 2PC comparators fare better than in the paper
(our two-phase commit is charitably fast and convoy collapse is not
reached at the scaled client counts — see EXPERIMENTS.md), so the
assertions require DynaMast to be at least competitive with them and
strictly better than single-master and LEAP.
"""

from _tpcc_cache import get_default_suite
from repro.bench.report import print_table, ratio


def test_fig4c_tpcc_neworder_latency(once):
    results = once(get_default_suite)
    rows = []
    for system, result in results.items():
        summary = result.latency("new_order")
        rows.append([system, summary.mean, summary.p90, summary.p99])
    print_table(
        "Figure 4c: TPC-C New-Order latency (ms)",
        ["system", "mean", "p90", "p99"],
        rows,
    )

    mean = {s: r.latency("new_order").mean for s, r in results.items()}
    p99 = {s: r.latency("new_order").p99 for s, r in results.items()}

    print_table(
        "Figure 4c: mean New-Order latency relative to DynaMast",
        ["system", "measured x", "paper x"],
        [
            ["single-master", ratio(mean["single-master"], mean["dynamast"]), 1.67],
            ["multi-master", ratio(mean["multi-master"], mean["dynamast"]), 6.7],
            ["partition-store", ratio(mean["partition-store"], mean["dynamast"]), 6.7],
            ["leap", ratio(mean["leap"], mean["dynamast"]), 25.0],
        ],
    )

    # Shape criteria (relaxed for the 2PC comparators, see module note).
    assert mean["dynamast"] <= 0.7 * mean["single-master"], (
        "paper: ~40% New-Order latency reduction vs single-master"
    )
    assert mean["dynamast"] <= 0.5 * mean["leap"], (
        "paper: large reduction vs LEAP"
    )
    assert p99["leap"] >= 3.0 * p99["dynamast"], (
        "paper: LEAP's localization produces far heavier tails"
    )
    assert mean["dynamast"] <= 1.10 * min(
        mean["multi-master"], mean["partition-store"]
    ), "DynaMast must at least match the 2PC systems' New-Order latency"
