"""Figure 4d: TPC-C Stock-Level (read-only) latency across systems.

Paper's shape: DynaMast, single-master and multi-master all serve
Stock-Level from local replicas with similar low latency; partition-
store must scatter-gather across warehouses when recent order lines
reference remote stock (the straggler effect) and averages higher;
LEAP, which has no replicas, must localize the read set and is orders
of magnitude slower.
"""

from _tpcc_cache import get_default_suite
from repro.bench.report import print_table, ratio


def test_fig4d_tpcc_stocklevel_latency(once):
    results = once(get_default_suite)
    rows = []
    for system, result in results.items():
        summary = result.latency("stock_level")
        rows.append([system, summary.mean, summary.p90, summary.p99])
    print_table(
        "Figure 4d: TPC-C Stock-Level latency (ms)",
        ["system", "mean", "p90", "p99"],
        rows,
    )

    mean = {s: r.latency("stock_level").mean for s, r in results.items()}

    print_table(
        "Figure 4d: Stock-Level mean latency relative to DynaMast",
        ["system", "measured x", "paper"],
        [
            ["single-master", ratio(mean["single-master"], mean["dynamast"]), "~1x"],
            ["multi-master", ratio(mean["multi-master"], mean["dynamast"]), "~1x"],
            ["partition-store", ratio(mean["partition-store"], mean["dynamast"]),
             "higher (straggler)"],
            ["leap", ratio(mean["leap"], mean["dynamast"]), "orders of magnitude"],
        ],
    )

    # Replicated systems are all in the same band.
    assert mean["multi-master"] <= 1.5 * mean["dynamast"]
    assert mean["dynamast"] <= 1.5 * mean["multi-master"]
    assert mean["single-master"] <= 2.0 * mean["dynamast"]
    # LEAP's localization dominates everything else.
    assert mean["leap"] >= 5.0 * mean["dynamast"], (
        "paper: LEAP has orders-of-magnitude higher Stock-Level latency"
    )
    # Partition-store's multi-warehouse reads must not beat the
    # replicated systems' local reads.
    assert mean["partition-store"] >= 0.9 * mean["dynamast"]
