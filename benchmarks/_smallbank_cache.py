"""Memoized SmallBank suite shared by the figure-8a-8d benches."""

from __future__ import annotations

from repro.bench.experiments import smallbank_suite

_suite = None


def get_suite():
    """The (cached) SmallBank results for all five systems."""
    global _suite
    if _suite is None:
        _suite = smallbank_suite()
    return _suite
