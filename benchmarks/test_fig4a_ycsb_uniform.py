"""Figure 4a: YCSB uniform 50/50 RMW/scan — throughput vs clients.

Paper's shape: DynaMast wins at every client count, improving
throughput by ~2.3x over partition-store and ~1.3x over single-master;
LEAP improves on partition-store by ~20% but reaches only half of
DynaMast; multi-master sits between partition-store and single-master;
single-master saturates as clients grow.
"""

from repro.bench.experiments import fig4a_ycsb_uniform
from repro.bench.report import print_table, ratio


def test_fig4a_ycsb_uniform(once):
    results = fig4a_ycsb_uniform(client_counts=(12, 24, 48))
    systems = list(results)
    client_counts = sorted(next(iter(results.values())))

    rows = []
    for system in systems:
        row = [system] + [
            results[system][clients].throughput for clients in client_counts
        ]
        rows.append(row)
    print_table(
        "Figure 4a: YCSB uniform 50/50 throughput (txn/s) vs clients",
        ["system"] + [f"{c} clients" for c in client_counts],
        rows,
    )

    peak = {
        system: max(r.throughput for r in results[system].values())
        for system in systems
    }
    print_table(
        "Figure 4a: peak throughput vs paper expectation",
        ["system", "measured txn/s", "dynamast/x", "paper dynamast/x"],
        [
            ["dynamast", peak["dynamast"], 1.0, 1.0],
            ["single-master", peak["single-master"],
             ratio(peak["dynamast"], peak["single-master"]), 1.3],
            ["multi-master", peak["multi-master"],
             ratio(peak["dynamast"], peak["multi-master"]), "1.3-2.3"],
            ["leap", peak["leap"], ratio(peak["dynamast"], peak["leap"]), 2.0],
            ["partition-store", peak["partition-store"],
             ratio(peak["dynamast"], peak["partition-store"]), 2.3],
        ],
    )

    # Shape criteria.
    assert peak["dynamast"] == max(peak.values()), "DynaMast must win Fig 4a"
    assert peak["dynamast"] >= 2.0 * peak["partition-store"], (
        "paper: ~2.3x over partition-store"
    )
    assert peak["dynamast"] >= 1.5 * peak["leap"], "paper: ~2x over LEAP"
    assert 1.1 <= ratio(peak["dynamast"], peak["single-master"]) <= 2.6, (
        "paper: ~1.3x over single-master"
    )
    assert peak["leap"] >= 1.05 * peak["partition-store"], (
        "paper: LEAP ~20% over partition-store"
    )
    # Single-master's master site saturates: its scaling from the
    # smallest to the largest client count is the worst among systems.
    sm_scaling = ratio(
        results["single-master"][48].throughput,
        results["single-master"][12].throughput,
    )
    dm_scaling = ratio(
        results["dynamast"][48].throughput, results["dynamast"][12].throughput
    )
    assert dm_scaling > sm_scaling, "single-master must saturate first"
