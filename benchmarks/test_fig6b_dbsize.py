"""Figure 6b (Appendix E): DynaMast throughput vs database size.

Paper's shape: growing the initial database 6x (5 GB -> 30 GB) leaves
the uniform mixes essentially unchanged (slight degradation on the
write-intensive mix from extra tracking and remastering), while the
skewed mix *improves* because the skew spreads over more items and
contention drops.
"""

from repro.bench.experiments import fig6b_database_size
from repro.bench.report import print_table, ratio


def test_fig6b_database_size(once):
    results = once(fig6b_database_size)

    sizes = sorted(next(iter(results.values())))
    rows = []
    for mix, by_size in results.items():
        small = by_size[sizes[0]].throughput
        large = by_size[sizes[-1]].throughput
        rows.append([mix, small, large, ratio(large, small)])
    print_table(
        "Figure 6b: DynaMast throughput, small vs 6x database",
        ["mix", f"{sizes[0]} parts", f"{sizes[-1]} parts", "large/small"],
        rows,
    )

    def change(mix):
        return ratio(
            results[mix][sizes[-1]].throughput, results[mix][sizes[0]].throughput
        )

    # Uniform mixes: little variation with database size.
    assert 0.75 <= change("50-50U") <= 1.25, "uniform 50/50 should be flat"
    assert 0.70 <= change("90-10U") <= 1.25, (
        "write-intensive uniform may degrade slightly, not collapse"
    )
    # Skewed mix: the larger database spreads the skew -> no worse.
    assert change("90-10S") >= 0.95, (
        "paper: the skewed mix improves as the database grows"
    )
