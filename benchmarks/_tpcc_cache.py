"""Memoized default-mix TPC-C suite shared by the TPC-C figure benches.

Figures 4c, 4d, 8e and 8f all read off the same default-mix TPC-C run;
running it once per benchmark session keeps the suite's total runtime
tractable.
"""

from __future__ import annotations

from repro.bench.experiments import tpcc_default_suite

_suite = None


def get_default_suite():
    """The (cached) default-mix TPC-C results for all five systems."""
    global _suite
    if _suite is None:
        _suite = tpcc_default_suite()
    return _suite
