"""Figure 5b: DynaMast adapts to a changed workload over time.

The correlations of a skewed 100% RMW workload are randomized against a
manually range-partitioned initial mastership; DynaMast must discover
the new co-access patterns and remaster. Paper's shape: throughput
climbs continuously over the measurement interval (paper: ~1.6x; here
more modest because remastering itself is cheaper — see
EXPERIMENTS.md) while the remastering rate decays by an order of
magnitude as placements converge.
"""

from repro.bench.experiments import fig5b_adaptivity
from repro.bench.report import print_table


def test_fig5b_adaptivity(once):
    result = once(fig5b_adaptivity)

    print_table(
        "Figure 5b: throughput over time after workload change",
        ["t (ms)", "txn/s"],
        [[f"{when:.0f}", tput] for when, tput in result.timeline],
    )
    print_table(
        "Remastering rate over time (learning curve)",
        ["t (ms)", "remaster rate"],
        [[f"{when:.0f}", round(rate, 4)] for when, rate in result.remaster_timeline],
    )
    print(
        f"throughput improvement: {result.improvement:.2f}x "
        f"(paper: ~1.6x over a 5-minute run)"
    )

    assert result.improvement >= 1.08, (
        "throughput must visibly improve as DynaMast learns the new "
        f"correlations (got {result.improvement:.2f}x)"
    )
    early_rate = result.remaster_timeline[0][1]
    late_rate = result.remaster_timeline[-1][1]
    assert early_rate > 0.10, "the changed workload must force remastering"
    assert late_rate <= early_rate / 3.0, (
        "the remastering rate must decay as placements converge "
        f"({early_rate:.1%} -> {late_rate:.1%})"
    )
    # Throughput must trend upward: the last bucket beats the first.
    assert result.timeline[-1][1] > result.timeline[0][1]
