"""Figure 8a (Appendix F): SmallBank maximum throughput.

Paper's shape: DynaMast has the highest throughput — above
partition-store (+15%), multi-master (+10%), single-master (+40%) and
LEAP (by ~7x). Our LEAP fares better than the paper's (its record
migrations are cheaper here — see EXPERIMENTS.md), so the assertion for
LEAP only requires DynaMast to stay clearly ahead.
"""

from _smallbank_cache import get_suite
from repro.bench.report import print_table, ratio


def test_fig8a_smallbank_throughput(once):
    results = once(get_suite)
    tput = {system: result.throughput for system, result in results.items()}

    print_table(
        "Figure 8a: SmallBank throughput",
        ["system", "txn/s", "dynamast/x measured", "paper x"],
        [
            ["dynamast", tput["dynamast"], 1.0, 1.0],
            ["multi-master", tput["multi-master"],
             ratio(tput["dynamast"], tput["multi-master"]), 1.10],
            ["partition-store", tput["partition-store"],
             ratio(tput["dynamast"], tput["partition-store"]), 1.15],
            ["single-master", tput["single-master"],
             ratio(tput["dynamast"], tput["single-master"]), 1.40],
            ["leap", tput["leap"], ratio(tput["dynamast"], tput["leap"]), 7.0],
        ],
    )
    remaster = results["dynamast"].remaster_rate
    print(f"DynaMast remaster rate: {remaster:.2%} (paper: <1%)")

    assert tput["dynamast"] == max(tput.values()), "DynaMast must win Fig 8a"
    assert tput["dynamast"] >= 1.10 * tput["partition-store"]
    assert tput["dynamast"] >= 1.05 * tput["multi-master"]
    assert tput["dynamast"] >= 1.30 * tput["single-master"]
    assert tput["dynamast"] >= 1.15 * tput["leap"]
    assert remaster <= 0.05, "paper: <1% of SmallBank txns require remastering"
