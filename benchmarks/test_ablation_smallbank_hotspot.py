"""Ablation: SmallBank hotspot skew (DESIGN.md design choice).

The paper's SmallBank section does not mention skew, so the
reproduction defaults to uniform accounts. This ablation turns the
classic SmallBank hotspot on (25% of accesses to 100 hot accounts) and
shows what changes: single-master benefits (the hot data is naturally
centralized for it), DynaMast pays remastering churn as the hot
partition is dragged between requesting sites, and LEAP — which moves
individual hot *records* cheaply — degrades least.

Not a paper figure — documents why the reproduction's default matches
the paper's uniform setting (see EXPERIMENTS.md).
"""

from repro.bench.experiments import smallbank_suite
from repro.bench.report import print_table, ratio


def test_ablation_smallbank_hotspot(once):
    def sweep():
        return {
            "uniform": smallbank_suite(
                systems=("dynamast", "single-master"), hotspot_fraction=0.0
            ),
            "hotspot": smallbank_suite(
                systems=("dynamast", "single-master"), hotspot_fraction=0.25
            ),
        }

    results = once(sweep)
    rows = []
    for mode, suite in results.items():
        for system, result in suite.items():
            rows.append([
                mode,
                system,
                result.throughput,
                result.metrics.remaster_fraction(),
                result.latency("two_row_update").p99,
            ])
    print_table(
        "Ablation: SmallBank hotspot on vs off",
        ["mode", "system", "txn/s", "remaster fraction", "2-row p99 ms"],
        rows,
    )

    uniform = results["uniform"]
    hotspot = results["hotspot"]
    # Uniform (the paper's setting): DynaMast clearly ahead.
    assert uniform["dynamast"].throughput > 1.2 * uniform["single-master"].throughput
    # Hotspot: centralization helps single-master relative to DynaMast.
    uniform_gap = ratio(
        uniform["dynamast"].throughput, uniform["single-master"].throughput
    )
    hotspot_gap = ratio(
        hotspot["dynamast"].throughput, hotspot["single-master"].throughput
    )
    assert hotspot_gap < uniform_gap, (
        "a central hotspot must erode DynaMast's advantage over single-master"
    )
