"""Figures 8e-8g (Appendix G): TPC-C Payment latency.

Paper's shape: single-master has the lowest average Payment latency
(payments are light, so routing them all to one site is cheap);
DynaMast is close behind, paying a little remastering for its much
better New-Order latency and overall throughput; LEAP, partition-store
and multi-master are far worse (data shipping / 2PC). As the
cross-warehouse Payment rate grows 0 -> 15%, DynaMast's latency grows
only slightly while the 2PC systems' grows much more (figure 8g).

At this simulation's client counts the single-master site is saturated
by the whole update load, so its Payment latency is queue-dominated and
DynaMast's is lowest instead; the 2PC/shipping orderings hold.
"""

from _tpcc_cache import get_default_suite
from repro.bench.experiments import cross_warehouse_sweep
from repro.bench.report import print_table, ratio


def test_fig8ef_payment_latency(once):
    results = once(get_default_suite)
    rows = []
    for system, result in results.items():
        summary = result.latency("payment")
        rows.append([system, summary.mean, summary.p90, summary.p99])
    print_table(
        "Figures 8e/8f: TPC-C Payment latency (ms)",
        ["system", "mean", "p90", "p99"],
        rows,
    )

    mean = {s: r.latency("payment").mean for s, r in results.items()}
    # DynaMast beats the shipping/2PC systems on Payment.
    assert mean["dynamast"] <= mean["leap"], "paper: -99% vs LEAP (direction)"
    assert mean["dynamast"] <= 1.05 * mean["partition-store"], (
        "paper: -97% vs partition-store (direction)"
    )
    assert mean["dynamast"] <= 1.05 * mean["multi-master"], (
        "paper: -96% vs multi-master (direction)"
    )


def test_fig8g_payment_cross_warehouse(once):
    results = once(
        cross_warehouse_sweep,
        remote_fractions=(0.0, 0.15),
        systems=("dynamast", "single-master", "multi-master", "partition-store"),
        transaction="payment",
    )
    fractions = sorted(next(iter(results.values())))
    rows = []
    for system in results:
        rows.append(
            [system]
            + [
                results[system][fraction].latency("payment").mean
                for fraction in fractions
            ]
        )
    print_table(
        "Figure 8g: Payment mean latency (ms) vs %% cross-warehouse",
        ["system"] + [f"{int(f * 100)}%%" for f in fractions],
        rows,
    )

    def increase(system):
        return (
            results[system][fractions[-1]].latency("payment").mean
            - results[system][fractions[0]].latency("payment").mean
        )

    # DynaMast's Payment latency grows less than the 2PC systems' as
    # cross-warehouse payments appear (paper: +0.2ms vs +10ms).
    assert increase("dynamast") <= increase("partition-store") + 0.5
    assert increase("dynamast") <= increase("multi-master") + 0.5
    # Single-master is insensitive to the cross-warehouse rate.
    assert abs(increase("single-master")) <= max(
        3.0, abs(increase("partition-store"))
    )
